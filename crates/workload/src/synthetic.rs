//! Parameterised synthetic stream generation.
//!
//! The generator produces a merged, arrival-ordered event feed for two
//! streams (base `S` and probe `R`) with:
//!
//! - evenly spaced event timestamps at a configurable event-time rate,
//! - keys drawn uniformly, Zipf-skewed, or from a rotating hot set
//!   (paper Figure 14's "random set of hot keys flow periodically"),
//! - bounded disorder: each tuple's *arrival* is delayed by a uniform
//!   jitter of at most `disorder`, so event-time inversions never exceed
//!   `disorder` and a lateness of `l ≥ disorder` yields exact results,
//! - a configurable probe/base split and value/payload shape.
//!
//! Everything is seeded and replayable.

use oij_common::{Duration, Event, Side, Timestamp, Tuple};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Key-selection distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf with the given exponent (> 0; larger = more skew). Rank 1 is
    /// key 0.
    Zipf {
        /// Skew exponent `s` in `p(rank) ∝ rank^{-s}`.
        exponent: f64,
    },
    /// A hot subset of keys receives `hot_fraction` of the traffic; the
    /// subset is re-drawn every `period` of event time (paper Figure 14).
    RotatingHot {
        /// Number of simultaneously hot keys.
        hot_keys: u64,
        /// Fraction of tuples routed to the hot set (0..=1).
        hot_fraction: f64,
        /// Event-time between hot-set rotations.
        period: Duration,
    },
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Total tuples to generate (both streams combined).
    pub tuples: usize,
    /// Number of unique keys `u`.
    pub unique_keys: u64,
    /// Key distribution.
    pub key_dist: KeyDist,
    /// Fraction of tuples on the probe stream `R` (the rest are base `S`).
    pub probe_fraction: f64,
    /// Event-time spacing between consecutive tuples, i.e. the inverse of
    /// the event-time arrival rate `v`.
    pub spacing: Duration,
    /// Maximum event-time disorder of the arrival order. Zero = in order.
    pub disorder: Duration,
    /// Payload bytes attached to every tuple (realistic memory traffic).
    pub payload_bytes: usize,
    /// RNG seed; identical configs generate identical feeds.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            tuples: 100_000,
            unique_keys: 100,
            key_dist: KeyDist::Uniform,
            probe_fraction: 0.5,
            spacing: Duration::from_micros(1),
            disorder: Duration::ZERO,
            payload_bytes: 0,
            seed: 0xA11CE,
        }
    }
}

impl SyntheticConfig {
    /// Event-time arrival rate in tuples/second implied by `spacing`.
    pub fn event_rate_per_sec(&self) -> f64 {
        1e6 / self.spacing.as_micros().max(1) as f64
    }

    /// Expected probe tuples of one key inside a window of length `w`
    /// (the paper's "matching elements in each time window").
    pub fn expected_matches_per_window(&self, w: Duration) -> f64 {
        let per_key_rate =
            self.event_rate_per_sec() * self.probe_fraction / self.unique_keys as f64;
        per_key_rate * w.as_micros() as f64 / 1e6
    }

    /// Generates the arrival-ordered event feed (without a trailing flush).
    pub fn generate(&self) -> Vec<Event> {
        assert!(
            (0.0..=1.0).contains(&self.probe_fraction),
            "probe_fraction must be in [0,1]"
        );
        assert!(self.spacing.as_micros() > 0, "spacing must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut key_picker = KeyPicker::new(&self.key_dist, self.unique_keys, &mut rng);
        let value_dist = Uniform::new(-100.0f64, 100.0);
        let payload: bytes::Bytes = vec![0xABu8; self.payload_bytes].into();

        // 1) Ideal, in-order tuples.
        let mut staged: Vec<(i64, Side, Tuple)> = Vec::with_capacity(self.tuples);
        let spacing = self.spacing.as_micros();
        let disorder = self.disorder.as_micros();
        for i in 0..self.tuples {
            let ts = Timestamp::from_micros(i as i64 * spacing);
            let side = if rng.gen_bool(self.probe_fraction) {
                Side::Probe
            } else {
                Side::Base
            };
            let key = key_picker.pick(ts, &mut rng);
            let tuple = Tuple::with_payload(ts, key, value_dist.sample(&mut rng), payload.clone());
            // 2) Arrival instant = event time + bounded jitter.
            let jitter = if disorder == 0 {
                0
            } else {
                rng.gen_range(0..=disorder)
            };
            staged.push((ts.as_micros() + jitter, side, tuple));
        }

        // 3) Arrival order = sort by (jittered instant, original index);
        //    stable sort keeps equal-instant tuples in event order.
        staged.sort_by_key(|(arrival, _, _)| *arrival);
        staged
            .into_iter()
            .enumerate()
            .map(|(seq, (_, side, tuple))| Event::data(seq as u64, side, tuple))
            .collect()
    }
}

/// Internal sampler over the configured key distribution.
struct KeyPicker {
    keys: u64,
    kind: PickerKind,
}

enum PickerKind {
    Uniform,
    /// Precomputed Zipf CDF over ranks.
    Zipf(Vec<f64>),
    RotatingHot {
        hot_keys: u64,
        hot_fraction: f64,
        period_us: i64,
        current_period: i64,
        hot_set: Vec<u64>,
    },
}

impl KeyPicker {
    fn new(dist: &KeyDist, keys: u64, rng: &mut StdRng) -> Self {
        let kind = match dist {
            KeyDist::Uniform => PickerKind::Uniform,
            KeyDist::Zipf { exponent } => {
                assert!(*exponent > 0.0, "Zipf exponent must be positive");
                let mut cdf = Vec::with_capacity(keys as usize);
                let mut acc = 0.0;
                for rank in 1..=keys {
                    acc += (rank as f64).powf(-exponent);
                    cdf.push(acc);
                }
                for v in &mut cdf {
                    *v /= acc;
                }
                PickerKind::Zipf(cdf)
            }
            KeyDist::RotatingHot {
                hot_keys,
                hot_fraction,
                period,
            } => {
                assert!(*hot_keys > 0 && *hot_keys <= keys, "hot set within keys");
                assert!((0.0..=1.0).contains(hot_fraction));
                assert!(period.as_micros() > 0, "rotation period must be positive");
                PickerKind::RotatingHot {
                    hot_keys: *hot_keys,
                    hot_fraction: *hot_fraction,
                    period_us: period.as_micros(),
                    current_period: -1,
                    hot_set: draw_hot_set(*hot_keys, keys, rng),
                }
            }
        };
        KeyPicker { keys, kind }
    }

    fn pick(&mut self, ts: Timestamp, rng: &mut StdRng) -> u64 {
        match &mut self.kind {
            PickerKind::Uniform => rng.gen_range(0..self.keys),
            PickerKind::Zipf(cdf) => {
                let x: f64 = rng.gen();
                cdf.partition_point(|&c| c < x) as u64
            }
            PickerKind::RotatingHot {
                hot_keys,
                hot_fraction,
                period_us,
                current_period,
                hot_set,
            } => {
                let period = ts.as_micros() / *period_us;
                if period != *current_period {
                    *current_period = period;
                    *hot_set = draw_hot_set(*hot_keys, self.keys, rng);
                }
                if rng.gen_bool(*hot_fraction) {
                    hot_set[rng.gen_range(0..hot_set.len())]
                } else {
                    rng.gen_range(0..self.keys)
                }
            }
        }
    }
}

fn draw_hot_set(hot: u64, keys: u64, rng: &mut StdRng) -> Vec<u64> {
    let mut set = std::collections::HashSet::with_capacity(hot as usize);
    while (set.len() as u64) < hot {
        set.insert(rng.gen_range(0..keys));
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig {
            tuples: 1000,
            disorder: Duration::from_micros(50),
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn seeds_change_the_feed() {
        let a = SyntheticConfig::default().generate();
        let b = SyntheticConfig {
            seed: 7,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn in_order_when_disorder_zero() {
        let events = SyntheticConfig {
            tuples: 5000,
            ..Default::default()
        }
        .generate();
        let mut last = i64::MIN;
        for e in &events {
            let (_, t) = e.as_data().unwrap();
            assert!(t.ts.as_micros() >= last);
            last = t.ts.as_micros();
        }
    }

    #[test]
    fn disorder_is_bounded() {
        let disorder = 200i64;
        let events = SyntheticConfig {
            tuples: 10_000,
            disorder: Duration::from_micros(disorder),
            ..Default::default()
        }
        .generate();
        // max_ts_so_far - current_ts never exceeds the disorder bound.
        let mut max_seen = 0i64;
        let mut worst = 0i64;
        for e in &events {
            let ts = e.as_data().unwrap().1.ts.as_micros();
            worst = worst.max(max_seen - ts);
            max_seen = max_seen.max(ts);
        }
        assert!(worst > 0, "some disorder expected");
        assert!(
            worst <= disorder,
            "disorder {worst} exceeds bound {disorder}"
        );
    }

    #[test]
    fn probe_fraction_is_respected() {
        let events = SyntheticConfig {
            tuples: 20_000,
            probe_fraction: 0.25,
            ..Default::default()
        }
        .generate();
        let probes = events
            .iter()
            .filter(|e| e.as_data().unwrap().0 == Side::Probe)
            .count();
        let frac = probes as f64 / events.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "probe fraction {frac}");
    }

    #[test]
    fn uniform_keys_cover_the_space_evenly() {
        let events = SyntheticConfig {
            tuples: 50_000,
            unique_keys: 10,
            ..Default::default()
        }
        .generate();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for e in &events {
            *counts.entry(e.as_data().unwrap().1.key).or_default() += 1;
        }
        assert_eq!(counts.len(), 10);
        for (&k, &c) in &counts {
            assert!(k < 10);
            let frac = c as f64 / events.len() as f64;
            assert!((frac - 0.1).abs() < 0.02, "key {k}: {frac}");
        }
    }

    #[test]
    fn zipf_is_head_heavy_and_rank_ordered() {
        let events = SyntheticConfig {
            tuples: 50_000,
            unique_keys: 100,
            key_dist: KeyDist::Zipf { exponent: 1.2 },
            ..Default::default()
        }
        .generate();
        let mut counts = vec![0usize; 100];
        for e in &events {
            counts[e.as_data().unwrap().1.key as usize] += 1;
        }
        // Key 0 (rank 1) clearly dominates key 50.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // Head keys carry most of the mass.
        let head: usize = counts[..10].iter().sum();
        assert!(head * 2 > events.len(), "head mass too small: {head}");
    }

    #[test]
    fn rotating_hot_set_changes_over_time() {
        let period = Duration::from_micros(10_000);
        let events = SyntheticConfig {
            tuples: 100_000,
            unique_keys: 10_000,
            key_dist: KeyDist::RotatingHot {
                hot_keys: 10,
                hot_fraction: 0.9,
                period,
            },
            ..Default::default()
        }
        .generate();
        // Within each period, traffic concentrates on few keys; the top key
        // set differs across periods.
        let mut per_period: HashMap<i64, HashMap<u64, usize>> = HashMap::new();
        for e in &events {
            let t = e.as_data().unwrap().1;
            *per_period
                .entry(t.ts.as_micros() / period.as_micros())
                .or_default()
                .entry(t.key)
                .or_default() += 1;
        }
        let tops: Vec<std::collections::BTreeSet<u64>> = per_period
            .values()
            .map(|counts| {
                let mut v: Vec<_> = counts.iter().collect();
                v.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
                v.into_iter().take(10).map(|(k, _)| *k).collect()
            })
            .collect();
        assert!(tops.len() >= 5);
        // Concentration: top-10 keys carry ≥ 70% of a period's traffic.
        for (period_id, counts) in &per_period {
            let total: usize = counts.values().sum();
            let mut v: Vec<usize> = counts.values().cloned().collect();
            v.sort_by_key(|c| std::cmp::Reverse(*c));
            let top: usize = v.into_iter().take(10).sum();
            assert!(
                top as f64 > 0.7 * total as f64,
                "period {period_id}: top {top}/{total}"
            );
        }
        // Rotation: at least two periods have different hot sets.
        assert!(
            tops.windows(2).any(|w| w[0] != w[1]),
            "hot set never rotated"
        );
    }

    #[test]
    fn expected_matches_formula() {
        let cfg = SyntheticConfig {
            unique_keys: 5,
            probe_fraction: 0.5,
            spacing: Duration::from_micros(1), // 1M tuples/s event time
            ..Default::default()
        };
        // per-key probe rate = 1e6*0.5/5 = 1e5/s; window 40ms → 4000.
        let m = cfg.expected_matches_per_window(Duration::from_millis(40));
        assert!((m - 4000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "hot set within keys")]
    fn rotating_hot_set_larger_than_key_space_panics() {
        SyntheticConfig {
            tuples: 10,
            unique_keys: 5,
            key_dist: KeyDist::RotatingHot {
                hot_keys: 10,
                hot_fraction: 0.5,
                period: Duration::from_micros(100),
            },
            ..Default::default()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "probe_fraction")]
    fn probe_fraction_out_of_range_panics() {
        SyntheticConfig {
            tuples: 10,
            probe_fraction: 1.5,
            ..Default::default()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "Zipf exponent")]
    fn non_positive_zipf_exponent_panics() {
        SyntheticConfig {
            tuples: 10,
            key_dist: KeyDist::Zipf { exponent: 0.0 },
            ..Default::default()
        }
        .generate();
    }

    #[test]
    fn payload_bytes_are_attached() {
        let events = SyntheticConfig {
            tuples: 10,
            payload_bytes: 48,
            ..Default::default()
        }
        .generate();
        for e in &events {
            assert_eq!(e.as_data().unwrap().1.payload.len(), 48);
        }
    }
}
