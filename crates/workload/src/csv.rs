//! CSV trace import/export.
//!
//! Production traces (e.g. exported from a feature store) commonly arrive
//! as CSV. This module reads and writes the minimal OIJ schema:
//!
//! ```csv
//! side,ts_us,key,value
//! R,1000,42,3.25
//! S,1500,42,0
//! ```
//!
//! - `side`: `S`/`base` or `R`/`probe` (case-insensitive); a literal
//!   `FLUSH` row ends the feed early.
//! - `ts_us`: event timestamp in integer microseconds.
//! - `key`: unsigned 64-bit join key.
//! - `value`: the aggregatable column (optional; defaults to 0).
//!
//! Rows appear in **arrival order**; sequence numbers are assigned on
//! read. A header row is optional and auto-detected. No external CSV crate
//! is used — the schema is fixed and unquoted, so a hand-rolled splitter
//! keeps the dependency budget intact (commas inside fields are not
//! supported and produce a clear error).

use std::io::{self, BufRead, Write};

use oij_common::{Event, EventKind, Side, Timestamp, Tuple};

/// Reads an arrival-ordered event feed from CSV (see the [module
/// docs](self) for the schema).
pub fn read_csv(reader: impl BufRead) -> io::Result<Vec<Event>> {
    let mut events = Vec::new();
    let mut seq = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Auto-detect and skip a header row.
        if lineno == 0 && trimmed.to_ascii_lowercase().starts_with("side") {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let bad = |msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        let side = match fields[0].to_ascii_uppercase().as_str() {
            "S" | "BASE" => Side::Base,
            "R" | "PROBE" => Side::Probe,
            "FLUSH" => {
                events.push(Event::flush(seq));
                break;
            }
            other => return Err(bad(format!("unknown side '{other}'"))),
        };
        if fields.len() < 3 {
            return Err(bad(format!(
                "expected side,ts_us,key[,value] — got {} fields",
                fields.len()
            )));
        }
        let ts: i64 = fields[1]
            .parse()
            .map_err(|_| bad(format!("bad timestamp '{}'", fields[1])))?;
        let key: u64 = fields[2]
            .parse()
            .map_err(|_| bad(format!("bad key '{}'", fields[2])))?;
        let value: f64 = match fields.get(3) {
            None | Some(&"") => 0.0,
            Some(v) => v.parse().map_err(|_| bad(format!("bad value '{v}'")))?,
        };
        events.push(Event::data(
            seq,
            side,
            Tuple::new(Timestamp::from_micros(ts), key, value),
        ));
        seq += 1;
    }
    Ok(events)
}

/// Writes an event feed as CSV with a header row.
pub fn write_csv(mut writer: impl Write, events: &[Event]) -> io::Result<()> {
    writeln!(writer, "side,ts_us,key,value")?;
    for event in events {
        match &event.kind {
            EventKind::Flush => writeln!(writer, "FLUSH,,,")?,
            EventKind::Data { side, tuple } => writeln!(
                writer,
                "{},{},{},{}",
                side.label(),
                tuple.ts.as_micros(),
                tuple.key,
                tuple.value
            )?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let csv = "side,ts_us,key,value\nR,1000,42,3.25\nS,1500,42,0\n";
        let events = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        let (side, t) = events[0].as_data().unwrap();
        assert_eq!(side, Side::Probe);
        assert_eq!(t.ts, Timestamp::from_micros(1000));
        assert_eq!(t.key, 42);
        assert_eq!(t.value, 3.25);
        assert_eq!(events[1].as_data().unwrap().0, Side::Base);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn header_is_optional_and_aliases_work() {
        let csv = "base,10,1,2.5\nprobe,20,1,\n";
        let events = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(events[0].as_data().unwrap().0, Side::Base);
        let (_, t) = events[1].as_data().unwrap();
        assert_eq!(t.value, 0.0); // empty value defaults
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = "# trace v1\n\nS,5,9,1\n";
        let events = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn flush_row_ends_the_feed() {
        let csv = "S,5,9,1\nFLUSH,,,\nS,6,9,1\n";
        let events = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events[1].is_flush());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_csv("S,5,9,1\nX,6,9,1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_csv("S,notanumber,9,1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad timestamp"), "{err}");
        let err = read_csv("S,5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("fields"), "{err}");
    }

    #[test]
    fn roundtrip_through_csv() {
        use crate::synthetic::SyntheticConfig;
        let events = SyntheticConfig {
            tuples: 500,
            disorder: oij_common::Duration::from_micros(30),
            ..Default::default()
        }
        .generate();
        let mut buf = Vec::new();
        write_csv(&mut buf, &events).unwrap();
        let loaded = read_csv(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), events.len());
        for (a, b) in loaded.iter().zip(&events) {
            let (sa, ta) = a.as_data().unwrap();
            let (sb, tb) = b.as_data().unwrap();
            assert_eq!(sa, sb);
            assert_eq!(ta.ts, tb.ts);
            assert_eq!(ta.key, tb.key);
            assert!((ta.value - tb.value).abs() < 1e-9);
        }
    }
}
