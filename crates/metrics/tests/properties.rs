//! Property tests for the metrics toolkit.

use oij_common::Timestamp;
use oij_metrics::{unbalancedness, DisorderEstimator, LatencyHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Histogram quantiles are within the documented ~6.25% quantisation of
    /// the exact (sorted) quantiles, for arbitrary samples.
    #[test]
    fn histogram_quantiles_track_exact(
        mut samples in proptest::collection::vec(1u64..1_000_000_000, 1..2_000),
        q in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1] as f64;
        let approx = h.quantile_ns(q) as f64;
        // Bucket representative is a lower bound within 1/16 of the value,
        // and rank rounding can shift by one sample; allow a slack factor.
        prop_assert!(
            approx <= exact * 1.0001 + 1.0,
            "quantile overshoot: {approx} > {exact}"
        );
        // The approx value must be ≥ the next-lower exact sample scaled by
        // the quantisation bound.
        let lower = samples[rank.saturating_sub(2).min(samples.len() - 1)] as f64;
        prop_assert!(
            approx >= lower * (1.0 - 1.0 / 16.0) - 1.0,
            "quantile undershoot: {approx} < {lower}"
        );
    }

    /// Merging histograms equals recording everything into one.
    #[test]
    fn histogram_merge_equals_union(
        a in proptest::collection::vec(1u64..1_000_000, 0..500),
        b in proptest::collection::vec(1u64..1_000_000, 0..500),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &s in &a {
            ha.record(s);
            hu.record(s);
        }
        for &s in &b {
            hb.record(s);
            hu.record(s);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max_ns(), hu.max_ns());
        prop_assert_eq!(ha.min_ns(), hu.min_ns());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile_ns(q), hu.quantile_ns(q), "q={}", q);
        }
    }

    /// Unbalancedness is scale-invariant and zero exactly for uniform loads.
    #[test]
    fn unbalancedness_properties(
        loads in proptest::collection::vec(0.0f64..1e6, 1..64),
        scale in 0.001f64..1000.0,
    ) {
        let u1 = unbalancedness(&loads);
        let scaled: Vec<f64> = loads.iter().map(|l| l * scale).collect();
        let u2 = unbalancedness(&scaled);
        prop_assert!((u1 - u2).abs() < 1e-6 * (1.0 + u1), "{u1} vs {u2}");
        prop_assert!(u1 >= 0.0);
        let uniform = vec![loads[0]; loads.len()];
        prop_assert!(unbalancedness(&uniform) < 1e-12);
    }

    /// The disorder estimator's full-coverage recommendation always covers
    /// every observed inversion.
    #[test]
    fn disorder_full_coverage_is_sound(
        deltas in proptest::collection::vec((1i64..1_000, 0i64..5_000), 1..1_000),
    ) {
        let mut est = DisorderEstimator::new();
        let mut t = 0i64;
        let mut worst = 0i64;
        let mut max_seen = i64::MIN;
        for &(step, lag) in &deltas {
            t += step;
            let ts = t - lag;
            if max_seen > ts {
                worst = worst.max(max_seen - ts);
            }
            max_seen = max_seen.max(ts);
            est.observe(Timestamp::from_micros(ts));
        }
        prop_assert_eq!(est.max_disorder().as_micros(), worst);
        prop_assert_eq!(est.recommended_lateness(1.0).as_micros(), worst);
        // Lower coverage never recommends more.
        prop_assert!(est.recommended_lateness(0.9) <= est.recommended_lateness(1.0));
    }
}
