//! Per-joiner busy-time timelines (paper Figure 14).
//!
//! The paper samples OS-level CPU utilisation of each joiner thread while a
//! skewed workload's hot keys rotate. In-process we obtain the same signal
//! by having each joiner attribute its busy nanoseconds to fixed wall-clock
//! buckets; utilisation of a bucket is `busy_ns / bucket_ns`.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Accumulates one thread's busy time into wall-clock buckets.
#[derive(Debug)]
pub struct BusyTimeline {
    origin: Instant,
    bucket_ns: u64,
    busy_per_bucket: Vec<u64>,
}

/// A finished utilisation series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationSeries {
    /// Bucket width in nanoseconds.
    pub bucket_ns: u64,
    /// Utilisation ∈ [0, 1] per bucket.
    pub utilization: Vec<f64>,
}

impl BusyTimeline {
    /// Creates a timeline with the given bucket width, anchored at `origin`
    /// (pass the same origin to all joiners so their buckets align).
    pub fn new(origin: Instant, bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        BusyTimeline {
            origin,
            bucket_ns,
            busy_per_bucket: Vec::new(),
        }
    }

    /// Attributes `busy_ns` of work ending `at` to the covering bucket(s).
    /// Work spanning bucket boundaries is split proportionally.
    pub fn record(&mut self, at: Instant, busy_ns: u64) {
        let end_off = at.saturating_duration_since(self.origin).as_nanos() as u64;
        let start_off = end_off.saturating_sub(busy_ns);
        let mut lo = start_off;
        while lo < end_off {
            let bucket = (lo / self.bucket_ns) as usize;
            let bucket_end = (bucket as u64 + 1) * self.bucket_ns;
            let hi = end_off.min(bucket_end);
            if self.busy_per_bucket.len() <= bucket {
                self.busy_per_bucket.resize(bucket + 1, 0);
            }
            self.busy_per_bucket[bucket] += hi - lo;
            lo = hi;
        }
        if busy_ns == 0 {
            // still make the bucket exist so idle joiners chart as 0
            let bucket = (end_off / self.bucket_ns) as usize;
            if self.busy_per_bucket.len() <= bucket {
                self.busy_per_bucket.resize(bucket + 1, 0);
            }
        }
    }

    /// Converts to a utilisation series (fractions of each bucket busy).
    pub fn finish(self) -> UtilizationSeries {
        let bucket_ns = self.bucket_ns;
        UtilizationSeries {
            bucket_ns,
            utilization: self
                .busy_per_bucket
                .into_iter()
                .map(|ns| (ns as f64 / bucket_ns as f64).min(1.0))
                .collect(),
        }
    }
}

impl UtilizationSeries {
    /// Standard deviation of utilisation across buckets — the "smoothness"
    /// the paper eyeballs in Figure 14 (lower = smoother adaptation).
    pub fn variation(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        let n = self.utilization.len() as f64;
        let mean = self.utilization.iter().sum::<f64>() / n;
        (self
            .utilization
            .iter()
            .map(|u| (u - mean) * (u - mean))
            .sum::<f64>()
            / n)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn work_lands_in_right_bucket() {
        let origin = Instant::now();
        let mut tl = BusyTimeline::new(origin, 1_000_000); // 1ms buckets
                                                           // 0.5ms of work ending at t=2.5ms → bucket 2
        tl.record(origin + Duration::from_micros(2_500), 500_000);
        let s = tl.finish();
        assert_eq!(s.utilization.len(), 3);
        assert_eq!(s.utilization[0], 0.0);
        assert_eq!(s.utilization[1], 0.0);
        assert!((s.utilization[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn spanning_work_is_split() {
        let origin = Instant::now();
        let mut tl = BusyTimeline::new(origin, 1_000);
        // 2000ns of work ending at t=2500 → 500 in b0? No: spans [500,2500):
        // 500 in bucket0, 1000 in bucket1, 500 in bucket2.
        tl.record(origin + Duration::from_nanos(2_500), 2_000);
        let s = tl.finish();
        assert!((s.utilization[0] - 0.5).abs() < 1e-9);
        assert!((s.utilization[1] - 1.0).abs() < 1e-9);
        assert!((s.utilization[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn variation_reflects_smoothness() {
        let smooth = UtilizationSeries {
            bucket_ns: 1,
            utilization: vec![0.5; 10],
        };
        let bursty = UtilizationSeries {
            bucket_ns: 1,
            utilization: vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
        };
        assert_eq!(smooth.variation(), 0.0);
        assert!(bursty.variation() > 0.4);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        let origin = Instant::now();
        let mut tl = BusyTimeline::new(origin, 100);
        tl.record(origin + Duration::from_nanos(100), 1_000_000);
        let s = tl.finish();
        assert!(s.utilization.iter().all(|&u| u <= 1.0));
    }
}
