//! Online disorder estimation — towards "tunable accuracy without prior
//! knowledge (i.e., lateness)", one of the paper's future-work items.
//!
//! The lateness `l` is normally configured from prior knowledge of the
//! stream's disorder. [`DisorderEstimator`] learns it online instead: it
//! tracks, per tuple, how far the timestamp lags the running maximum
//! (`max_seen − ts`, the tuple's *disorder*), keeps the distribution in a
//! log-bucketed histogram, and recommends the lateness that would have
//! covered any target fraction of tuples.

use serde::{Deserialize, Serialize};

use oij_common::{Duration, Timestamp};

use crate::latency::LatencyHistogram;

/// Streaming estimator of a stream's event-time disorder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisorderEstimator {
    max_ts: Option<i64>,
    /// Distribution of positive disorder values, in µs (reuses the
    /// log-bucketed histogram: ≤ ~6% relative quantisation).
    hist: LatencyHistogram,
    tuples: u64,
    late_tuples: u64,
    max_disorder: i64,
}

impl Default for DisorderEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl DisorderEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        DisorderEstimator {
            max_ts: None,
            hist: LatencyHistogram::new(),
            tuples: 0,
            late_tuples: 0,
            max_disorder: 0,
        }
    }

    /// Feeds one tuple timestamp in arrival order.
    pub fn observe(&mut self, ts: Timestamp) {
        self.tuples += 1;
        let t = ts.as_micros();
        match self.max_ts {
            None => self.max_ts = Some(t),
            Some(max) if t >= max => self.max_ts = Some(t),
            Some(max) => {
                let disorder = max - t;
                self.late_tuples += 1;
                self.max_disorder = self.max_disorder.max(disorder);
                self.hist.record(disorder as u64);
            }
        }
    }

    /// Tuples observed so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Fraction of tuples that arrived below the running maximum.
    pub fn late_fraction(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.late_tuples as f64 / self.tuples as f64
        }
    }

    /// The largest disorder seen (a lateness of exactly this value would
    /// have made every observed tuple in-bounds).
    pub fn max_disorder(&self) -> Duration {
        Duration::from_micros(self.max_disorder)
    }

    /// The lateness that would have covered `coverage` of **all** tuples
    /// (in-order tuples need no allowance, so they count as covered).
    ///
    /// `coverage = 1.0` returns [`max_disorder`](Self::max_disorder);
    /// smaller values trade memory/latency for bounded inaccuracy, which is
    /// precisely the knob the paper's future work asks for.
    pub fn recommended_lateness(&self, coverage: f64) -> Duration {
        let coverage = coverage.clamp(0.0, 1.0);
        if self.tuples == 0 || self.late_tuples == 0 {
            return Duration::ZERO;
        }
        if coverage >= 1.0 {
            return self.max_disorder();
        }
        let in_order = self.tuples - self.late_tuples;
        let need = coverage * self.tuples as f64 - in_order as f64;
        if need <= 0.0 {
            return Duration::ZERO;
        }
        let q = need / self.late_tuples as f64;
        Duration::from_micros(self.hist.quantile_ns(q) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: i64) -> Timestamp {
        Timestamp::from_micros(v)
    }

    #[test]
    fn in_order_stream_needs_no_lateness() {
        let mut e = DisorderEstimator::new();
        for t in 0..1000 {
            e.observe(us(t));
        }
        assert_eq!(e.late_fraction(), 0.0);
        assert_eq!(e.recommended_lateness(0.999), Duration::ZERO);
        assert_eq!(e.max_disorder(), Duration::ZERO);
    }

    #[test]
    fn constant_disorder_is_learned() {
        // Pairs arrive swapped: disorder of exactly 10µs for half the
        // tuples.
        let mut e = DisorderEstimator::new();
        for i in 0..500 {
            e.observe(us(i * 20 + 10));
            e.observe(us(i * 20)); // 10µs behind the max
        }
        assert!((e.late_fraction() - 0.5).abs() < 1e-9);
        let rec = e.recommended_lateness(1.0).as_micros();
        assert_eq!(rec, 10);
        // Covering only the in-order half needs nothing.
        assert_eq!(e.recommended_lateness(0.5), Duration::ZERO);
    }

    #[test]
    fn heavy_tail_is_separated_by_coverage() {
        let mut e = DisorderEstimator::new();
        let mut t = 0i64;
        let mut x = 7u64;
        for i in 0..100_000 {
            t += 10;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // 1% of tuples extremely late (by ~100ms), the rest ≤ 100µs.
            let lag = if i % 100 == 0 {
                100_000
            } else {
                (x >> 33) as i64 % 100
            };
            e.observe(us(t - lag));
        }
        let p99 = e.recommended_lateness(0.99).as_micros();
        let p100 = e.recommended_lateness(1.0).as_micros();
        assert!(p99 <= 110, "99% coverage should ignore the tail: {p99}");
        assert!(
            p100 >= 90_000,
            "full coverage must include the tail: {p100}"
        );
    }

    #[test]
    fn coverage_is_monotone() {
        let mut e = DisorderEstimator::new();
        let mut x = 3u64;
        for i in 0..10_000i64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.observe(us(i * 5 - ((x >> 40) as i64 % 500)));
        }
        let mut last = -1i64;
        for c in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rec = e.recommended_lateness(c).as_micros();
            assert!(rec >= last, "coverage {c}: {rec} < {last}");
            last = rec;
        }
    }

    #[test]
    fn empty_estimator_is_harmless() {
        let e = DisorderEstimator::new();
        assert_eq!(e.tuples(), 0);
        assert_eq!(e.recommended_lateness(1.0), Duration::ZERO);
    }
}
