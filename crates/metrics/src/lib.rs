//! # oij-metrics — measurement toolkit for the OIJ study
//!
//! Implements the performance metrics of the paper's Section III-B and the
//! derived quantities its analysis relies on:
//!
//! - [`latency::LatencyHistogram`] — log-bucketed latency recorder with
//!   percentile and CDF output (Figures 5, 17–20, 23).
//! - [`throughput::ThroughputMeter`] — tuples/second over a measured span
//!   (Figures 4, 7–9, 11, 13, 16–22).
//! - [`breakdown::TimeBreakdown`] — lookup / match / other processing-time
//!   split (Figure 6).
//! - [`stats`] — *effectiveness* (Equation 1), *unbalancedness*
//!   (Equation 2) and helper statistics.
//! - [`occupancy::BatchOccupancy`] — fill-level histogram for the batched
//!   routing path (oij-core DESIGN.md §10): how full each coalesced batch
//!   was when its joiner received it.
//! - [`timeline::BusyTimeline`] — per-joiner busy-time over wall-clock
//!   buckets, the in-process stand-in for the CPU-utilisation sampling of
//!   Figure 14.
//! - [`disorder::DisorderEstimator`] — online lateness recommendation, an
//!   implementation of the paper's "tunable accuracy without prior
//!   knowledge" future-work item.

#![warn(missing_docs)]

pub mod breakdown;
pub mod disorder;
pub mod latency;
pub mod occupancy;
pub mod stats;
pub mod throughput;
pub mod timeline;

pub use breakdown::TimeBreakdown;
pub use disorder::DisorderEstimator;
pub use latency::LatencyHistogram;
pub use occupancy::BatchOccupancy;
pub use stats::{effectiveness, unbalancedness, EffectivenessMeter};
pub use throughput::ThroughputMeter;
pub use timeline::BusyTimeline;
