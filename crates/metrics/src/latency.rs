//! Log-bucketed latency histogram.
//!
//! An HDR-style histogram over nanosecond samples: buckets grow
//! geometrically (16 linear sub-buckets per power of two), giving ≤ ~6%
//! relative quantisation error across the full range from 1 ns to ~18 s
//! with a fixed, allocation-free footprint. Supports merging (per-joiner
//! recorders are combined after a run) and produces the CDF series the
//! paper plots in Figures 5, 17–20 and 23.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two decade.
const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)
/// Values below this are stored in exact unit buckets.
const LINEAR_LIMIT: u64 = 2 * SUB_BUCKETS as u64; // 32
/// Power-of-two decades covered above the linear region: msb 5..=39,
/// i.e. values up to 2^40 ns ≈ 18.3 minutes; larger samples saturate.
const DECADES: usize = 35;
const BUCKETS: usize = LINEAR_LIMIT as usize + DECADES * SUB_BUCKETS;

/// A mergeable, fixed-size latency histogram over `u64` nanosecond samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    #[inline]
    fn bucket_of(value_ns: u64) -> usize {
        if value_ns < LINEAR_LIMIT {
            return value_ns as usize;
        }
        let msb = 63 - value_ns.leading_zeros(); // ≥ 5
        let shift = msb - SUB_BITS; // top SUB_BITS+1 bits select the bucket
        let top = (value_ns >> shift) as usize; // ∈ [16, 31]
        let idx = LINEAR_LIMIT as usize + (msb as usize - 5) * SUB_BUCKETS + (top - SUB_BUCKETS);
        idx.min(BUCKETS - 1)
    }

    /// Representative (lower-bound) value of a bucket, in nanoseconds.
    fn bucket_value(idx: usize) -> u64 {
        if (idx as u64) < LINEAR_LIMIT {
            return idx as u64;
        }
        let rem = idx - LINEAR_LIMIT as usize;
        let msb = (rem / SUB_BUCKETS) as u32 + 5;
        let top = (rem % SUB_BUCKETS + SUB_BUCKETS) as u64;
        top << (msb - SUB_BITS)
    }

    /// Records one latency sample, in nanoseconds.
    #[inline]
    pub fn record(&mut self, value_ns: u64) {
        self.counts[Self::bucket_of(value_ns)] += 1;
        self.total += 1;
        self.max = self.max.max(value_ns);
        self.min = self.min.min(value_ns);
        self.sum += value_ns as u128;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample (ns), 0 when empty.
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample (ns), 0 when empty.
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact arithmetic mean (ns), 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]` (ns), up to bucket quantisation.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fraction of samples at or below `value_ns` — one point of the CDF.
    pub fn cdf_at(&self, value_ns: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cut = Self::bucket_of(value_ns);
        let below: u64 = self.counts[..=cut].iter().sum();
        below as f64 / self.total as f64
    }

    /// The full CDF as `(latency_ns, cumulative_fraction)` points over the
    /// non-empty buckets, suitable for plotting.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((
                Self::bucket_value(idx).min(self.max),
                cum as f64 / self.total as f64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), 10);
        assert_eq!(h.quantile_ns(1.0), 10);
        assert_eq!(h.mean_ns(), 5.5);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        // 1..10ms uniformly: p50 ≈ 5ms within bucket resolution (~6%).
        for i in 0..10_000u64 {
            h.record(1_000_000 + i * 900); // 1.0ms .. 10.0ms
        }
        let p50 = h.quantile_ns(0.5) as f64;
        let expect = 5.5e6;
        assert!(
            (p50 - expect).abs() / expect < 0.08,
            "p50 {p50} vs {expect}"
        );
        let p99 = h.quantile_ns(0.99) as f64;
        assert!((p99 - 9.9e6).abs() / 9.9e6 < 0.08, "p99 {p99}");
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut h = LatencyHistogram::new();
        let mut x = 9u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            h.record(x % 100_000_000);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "x not sorted");
            assert!(w[0].1 <= w[1].1, "y not monotone");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_threshold_matches_paper_usage() {
        // "80%-90% below 20 ms": cdf_at(20ms) must count exactly the
        // samples ≤ 20ms (up to bucket edges).
        let mut h = LatencyHistogram::new();
        for _ in 0..80 {
            h.record(5_000_000); // 5 ms
        }
        for _ in 0..20 {
            h.record(100_000_000); // 100 ms
        }
        let frac = h.cdf_at(20_000_000);
        assert!((frac - 0.8).abs() < 1e-9, "{frac}");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            a.record(v * 1000);
        }
        for v in [40u64, 50] {
            b.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max_ns(), 50_000);
        assert_eq!(a.min_ns(), 10_000);
        assert!((a.mean_ns() - 30_000.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        // bucket_value(bucket_of(v)) must be within ~6.25% of v.
        let mut v = 1u64;
        while v < 1 << 39 {
            let idx = LatencyHistogram::bucket_of(v);
            let rep = LatencyHistogram::bucket_value(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "v={v} rep={rep}");
            v = v * 3 + 1;
        }
    }
}
