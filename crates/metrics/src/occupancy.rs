//! Batch-occupancy histogram for the batched routing path (DESIGN.md §10).
//!
//! Records how full each `Msg::Batch` was when a joiner received it. A
//! mean near the configured `batch_size` means coalescing is working
//! (flushes are size-driven); a mean near 1 means the input is too slow
//! or the flush deadline too tight for batching to pay for itself — the
//! knob-tuning signal EXPERIMENTS.md points at.

use serde::{Deserialize, Serialize};

/// Number of power-of-two occupancy buckets: bucket `i` counts batches
/// with `2^i ≤ len < 2^(i+1)` tuples; the last bucket absorbs the rest.
/// 17 buckets reach the maximum validated `batch_size` (65 536).
const BUCKETS: usize = 17;

/// Histogram of batch fill levels observed by a joiner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchOccupancy {
    /// Power-of-two occupancy buckets (see [`BUCKETS`]). A `Vec` rather
    /// than an array purely for serde compatibility; always `BUCKETS`
    /// long once anything is recorded.
    buckets: Vec<u64>,
    /// Batches observed.
    batches: u64,
    /// Total tuples across all observed batches.
    tuples: u64,
    /// Largest single batch seen.
    max: u64,
}

impl Default for BatchOccupancy {
    fn default() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            batches: 0,
            tuples: 0,
            max: 0,
        }
    }
}

impl BatchOccupancy {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one batch carrying `len` tuples (`len == 0` is ignored:
    /// empty batches are never sent).
    #[inline]
    pub fn record(&mut self, len: usize) {
        if len == 0 {
            return;
        }
        let n = len as u64;
        let bucket = (63 - n.leading_zeros() as usize).min(BUCKETS - 1);
        if self.buckets.len() < BUCKETS {
            // Deserialized histograms may carry short bucket vectors.
            self.buckets.resize(BUCKETS, 0);
        }
        self.buckets[bucket] += 1;
        self.batches += 1;
        self.tuples += n;
        self.max = self.max.max(n);
    }

    /// Merges another joiner's histogram into this one.
    pub fn merge(&mut self, other: &BatchOccupancy) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.batches += other.batches;
        self.tuples += other.tuples;
        self.max = self.max.max(other.max);
    }

    /// Batches observed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total tuples across all observed batches.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Largest single batch seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean tuples per batch (0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.tuples as f64 / self.batches as f64
        }
    }

    /// The bucket counts, bucket `i` covering `2^i ≤ len < 2^(i+1)`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets() {
        let mut h = BatchOccupancy::new();
        h.record(0); // ignored
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(64); // bucket 6
        assert_eq!(h.batches(), 4);
        assert_eq!(h.tuples(), 70);
        assert_eq!(h.max(), 64);
        assert!((h.mean() - 17.5).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[6], 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = BatchOccupancy::new();
        a.record(4);
        let mut b = BatchOccupancy::new();
        b.record(8);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.batches(), 3);
        assert_eq!(a.tuples(), 13);
        assert_eq!(a.max(), 8);
    }

    #[test]
    fn huge_batches_clamp_to_last_bucket() {
        let mut h = BatchOccupancy::new();
        h.record(1 << 20);
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = BatchOccupancy::new();
        h.record(7);
        let json = serde_json::to_string(&h).unwrap();
        let back: BatchOccupancy = serde_json::from_str(&json).unwrap();
        assert_eq!(back.batches(), 1);
        assert_eq!(back.tuples(), 7);
    }
}
