//! Throughput measurement.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Measures tuples/second over a span.
///
/// ```
/// use oij_metrics::ThroughputMeter;
/// let mut m = ThroughputMeter::start();
/// m.add(1_000);
/// let report = m.finish();
/// assert_eq!(report.tuples, 1_000);
/// assert!(report.tuples_per_sec > 0.0);
/// ```
#[derive(Debug)]
pub struct ThroughputMeter {
    started: Instant,
    tuples: u64,
}

/// The result of a finished throughput measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Total input tuples processed.
    pub tuples: u64,
    /// Elapsed wall-clock seconds.
    pub elapsed_secs: f64,
    /// `tuples / elapsed_secs`.
    pub tuples_per_sec: f64,
}

impl ThroughputMeter {
    /// Starts the clock.
    pub fn start() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            tuples: 0,
        }
    }

    /// Adds processed tuples to the tally.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.tuples += n;
    }

    /// Stops the clock and reports.
    pub fn finish(self) -> ThroughputReport {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        ThroughputReport {
            tuples: self.tuples,
            elapsed_secs: elapsed,
            tuples_per_sec: self.tuples as f64 / elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_count_over_time() {
        let mut m = ThroughputMeter::start();
        m.add(500);
        m.add(500);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let r = m.finish();
        assert_eq!(r.tuples, 1000);
        assert!(r.elapsed_secs >= 0.01);
        assert!((r.tuples_per_sec - 1000.0 / r.elapsed_secs).abs() < 1e-6);
    }

    #[test]
    fn zero_tuples_is_zero_rate() {
        let r = ThroughputMeter::start().finish();
        assert_eq!(r.tuples, 0);
        assert_eq!(r.tuples_per_sec, 0.0);
    }
}
