//! Processing-time breakdown (paper Figure 6).
//!
//! The paper categorises joiner time as **lookup** (visiting stored tuples
//! to find the in-window ones), **match** (aggregating the in-window
//! tuples) and **other** (result writing, structure maintenance, …).
//! Joiners accumulate nanoseconds into a private `TimeBreakdown`; the
//! harness merges them after a run.

use serde::{Deserialize, Serialize};

/// Accumulated per-category processing time, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Time spent locating/visiting stored tuples (filtering to the window).
    pub lookup_ns: u64,
    /// Time spent aggregating in-window tuples.
    pub match_ns: u64,
    /// Everything else: result emission, insertion, expiration, scheduling.
    pub other_ns: u64,
}

impl TimeBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.lookup_ns + self.match_ns + self.other_ns
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.lookup_ns += other.lookup_ns;
        self.match_ns += other.match_ns;
        self.other_ns += other.other_ns;
    }

    /// `(lookup, match, other)` as fractions of the total (zeros if empty).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_ns();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.lookup_ns as f64 / t,
            self.match_ns as f64 / t,
            self.other_ns as f64 / t,
        )
    }
}

impl core::fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (l, m, o) = self.fractions();
        write!(
            f,
            "lookup {:.1}% | match {:.1}% | other {:.1}%",
            l * 100.0,
            m * 100.0,
            o * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let b = TimeBreakdown {
            lookup_ns: 300,
            match_ns: 500,
            other_ns: 200,
        };
        let (l, m, o) = b.fractions();
        assert!((l + m + o - 1.0).abs() < 1e-12);
        assert!((l - 0.3).abs() < 1e-12);
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        assert_eq!(TimeBreakdown::new().fractions(), (0.0, 0.0, 0.0));
        assert_eq!(TimeBreakdown::new().total_ns(), 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = TimeBreakdown {
            lookup_ns: 1,
            match_ns: 2,
            other_ns: 3,
        };
        a.merge(&TimeBreakdown {
            lookup_ns: 10,
            match_ns: 20,
            other_ns: 30,
        });
        assert_eq!(a.lookup_ns, 11);
        assert_eq!(a.match_ns, 22);
        assert_eq!(a.other_ns, 33);
    }
}
