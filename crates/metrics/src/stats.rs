//! Derived workload statistics: effectiveness and unbalancedness.

use serde::{Deserialize, Serialize};

/// *Effectiveness* (paper Equation 1): the average, over base tuples, of
/// `|in-window probe tuples| / |probe tuples visited|`. A full-scan engine
/// visits everything buffered, so its effectiveness collapses as lateness
/// grows; the time-travel index keeps it at 1.0.
///
/// Base tuples that visited nothing contribute an effectiveness of 1.0
/// (nothing wasted).
pub fn effectiveness(samples: &[(u64, u64)]) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let sum: f64 = samples
        .iter()
        .map(|&(matched, visited)| {
            if visited == 0 {
                1.0
            } else {
                matched as f64 / visited as f64
            }
        })
        .sum();
    sum / samples.len() as f64
}

/// Streaming accumulator for [`effectiveness`], kept per joiner so the hot
/// path only bumps two counters per base tuple.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EffectivenessMeter {
    ratio_sum: f64,
    base_tuples: u64,
}

impl EffectivenessMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one base tuple's `(matched, visited)` counts.
    #[inline]
    pub fn record(&mut self, matched: u64, visited: u64) {
        self.ratio_sum += if visited == 0 {
            1.0
        } else {
            matched as f64 / visited as f64
        };
        self.base_tuples += 1;
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EffectivenessMeter) {
        self.ratio_sum += other.ratio_sum;
        self.base_tuples += other.base_tuples;
    }

    /// The average effectiveness so far (1.0 when no base tuple recorded).
    pub fn value(&self) -> f64 {
        if self.base_tuples == 0 {
            1.0
        } else {
            self.ratio_sum / self.base_tuples as f64
        }
    }

    /// Number of base tuples recorded.
    pub fn count(&self) -> u64 {
        self.base_tuples
    }
}

/// *Unbalancedness* (paper Equation 2): the dispersion of per-joiner
/// workloads `W_i` normalised by the mean.
///
/// The paper's printed formula, `(1/(J·μ)) Σ (W_i − μ)`, is identically
/// zero for any input (the deviations sum to zero); the accompanying text
/// calls it "the standard deviation of workloads of all Joiner threads".
/// We therefore implement the evidently intended quantity — the
/// coefficient of variation `σ/μ` with population standard deviation —
/// which reproduces the qualitative behaviour of Figures 8b and 13c.
///
/// Returns 0.0 for empty input or an all-zero workload.
pub fn unbalancedness(workloads: &[f64]) -> f64 {
    if workloads.is_empty() {
        return 0.0;
    }
    let n = workloads.len() as f64;
    let mean = workloads.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = workloads
        .iter()
        .map(|w| (w - mean) * (w - mean))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effectiveness_perfect_when_index_visits_only_matches() {
        assert_eq!(effectiveness(&[(5, 5), (3, 3), (0, 0)]), 1.0);
    }

    #[test]
    fn effectiveness_degrades_with_wasted_visits() {
        // Each base tuple matched 1 of 10 visited.
        let e = effectiveness(&[(1, 10); 4]);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn effectiveness_empty_input_is_one() {
        assert_eq!(effectiveness(&[]), 1.0);
    }

    #[test]
    fn meter_matches_batch_function() {
        let samples = [(1u64, 4u64), (2, 2), (0, 8), (0, 0)];
        let mut m = EffectivenessMeter::new();
        for &(a, b) in &samples {
            m.record(a, b);
        }
        assert!((m.value() - effectiveness(&samples)).abs() < 1e-12);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn meter_merge() {
        let mut a = EffectivenessMeter::new();
        a.record(1, 2);
        let mut b = EffectivenessMeter::new();
        b.record(1, 1);
        a.merge(&b);
        assert!((a.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unbalancedness_zero_for_even_split() {
        assert_eq!(unbalancedness(&[10.0, 10.0, 10.0, 10.0]), 0.0);
    }

    #[test]
    fn unbalancedness_grows_with_skew() {
        let even = unbalancedness(&[25.0, 25.0, 25.0, 25.0]);
        let mild = unbalancedness(&[40.0, 20.0, 20.0, 20.0]);
        let severe = unbalancedness(&[100.0, 0.0, 0.0, 0.0]);
        assert!(even < mild && mild < severe);
        // One joiner does everything among J: σ/μ = sqrt(J−1).
        assert!((severe - (3.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn unbalancedness_edge_cases() {
        assert_eq!(unbalancedness(&[]), 0.0);
        assert_eq!(unbalancedness(&[0.0, 0.0]), 0.0);
        assert_eq!(unbalancedness(&[7.0]), 0.0);
    }
}
