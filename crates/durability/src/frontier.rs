//! The emitted-output frontier: the set of rows that have already
//! reached the sink, stored as merged ranges over frontier keys.
//!
//! A frontier key encodes one output row as `(seq << 1) | late`: a base
//! tuple's regular feature row uses the even key, a lateness side-output
//! marker (either side) uses the odd key. Because each base sequence
//! emits at most one regular row and each tuple at most one late marker,
//! membership in this set is exactly "this row already reached the
//! sink", which is what recovery's exactly-once dedup needs.
//!
//! Keys arrive roughly densely (sequence numbers), so the set is kept as
//! coalesced inclusive ranges in a `BTreeMap<start, end>` — a frontier
//! over millions of rows is a handful of ranges.

use std::collections::BTreeMap;

/// Encodes a row identity as a frontier key.
#[inline]
pub fn frontier_key(seq: u64, late: bool) -> u64 {
    (seq << 1) | late as u64
}

/// A set of emitted frontier keys, stored as merged inclusive ranges.
#[derive(Debug, Default, Clone)]
pub struct Frontier {
    /// `start -> end` (inclusive), non-overlapping, non-adjacent.
    ranges: BTreeMap<u64, u64>,
    len: u64,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Number of keys in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` has been recorded.
    pub fn contains(&self, key: u64) -> bool {
        self.ranges
            .range(..=key)
            .next_back()
            .is_some_and(|(_, &end)| key <= end)
    }

    /// Inserts `key`; returns `true` if it was newly added.
    pub fn insert(&mut self, key: u64) -> bool {
        if self.contains(key) {
            return false;
        }
        self.len += 1;
        // Merge with a predecessor range ending at key-1 and/or a
        // successor range starting at key+1.
        let grow_left = key.checked_sub(1).and_then(|p| {
            self.ranges
                .range(..=p)
                .next_back()
                .filter(|(_, &end)| end == p)
                .map(|(&s, _)| s)
        });
        let grow_right = key
            .checked_add(1)
            .filter(|n| self.ranges.contains_key(n))
            .map(|n| self.ranges.remove(&n).expect("checked key"));
        match (grow_left, grow_right) {
            (Some(start), Some(end)) => {
                self.ranges.insert(start, end);
            }
            (Some(start), None) => {
                self.ranges.insert(start, key);
            }
            (None, Some(end)) => {
                self.ranges.insert(key, end);
            }
            (None, None) => {
                self.ranges.insert(key, key);
            }
        }
        true
    }

    /// Iterates the merged ranges `(start, end)` inclusive, ascending.
    pub fn ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of stored ranges (compactness metric, used by tests).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Rebuilds a frontier from serialized ranges.
    pub fn from_ranges(ranges: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut f = Frontier::new();
        for (s, e) in ranges {
            f.ranges.insert(s, e);
            f.len += e.saturating_sub(s) + 1;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distinguish_regular_and_late_rows() {
        assert_ne!(frontier_key(5, false), frontier_key(5, true));
        assert_eq!(frontier_key(5, false) >> 1, 5);
        assert_eq!(frontier_key(5, true) & 1, 1);
    }

    #[test]
    fn dense_inserts_coalesce_to_one_range() {
        let mut f = Frontier::new();
        for seq in 0..100 {
            assert!(f.insert(frontier_key(seq, false) | 1));
        }
        // Odd keys 1,3,5.. do not coalesce; even+odd both do:
        let mut g = Frontier::new();
        for k in 0..200u64 {
            assert!(g.insert(k));
            assert!(!g.insert(k), "reinsert reports already-present");
        }
        assert_eq!(g.range_count(), 1);
        assert_eq!(g.len(), 200);
        assert!(g.contains(0) && g.contains(199) && !g.contains(200));
        assert!(f.range_count() > 1);
    }

    #[test]
    fn out_of_order_inserts_merge_adjacent_ranges() {
        let mut f = Frontier::new();
        for k in [10u64, 12, 11, 0, 1, 13, 9] {
            assert!(f.insert(k));
        }
        assert_eq!(f.range_count(), 2, "{:?}", f.ranges);
        let ranges: Vec<_> = f.ranges().collect();
        assert_eq!(ranges, vec![(0, 1), (9, 13)]);
        assert_eq!(f.len(), 7);
    }

    #[test]
    fn round_trips_through_serialized_ranges() {
        let mut f = Frontier::new();
        for k in [3u64, 4, 5, 9, 200, 201] {
            f.insert(k);
        }
        let g = Frontier::from_ranges(f.ranges().collect::<Vec<_>>());
        assert_eq!(g.len(), f.len());
        for k in 0..300 {
            assert_eq!(g.contains(k), f.contains(k), "key {k}");
        }
    }
}
