//! Checkpoints: periodic snapshots of everything replay needs so
//! recovery starts from the last cut instead of log origin.
//!
//! A checkpoint is one CRC-framed record in its own file
//! (`ckpt-NNNNNNNN.ckpt`), written to a temp name and renamed into
//! place, so a crash mid-write leaves the previous checkpoint intact.
//! The two newest files are kept; loading tries newest-first and falls
//! back, so a corrupt newest checkpoint degrades to the previous cut
//! (the WAL tail then covers the difference).
//!
//! Contents: the logical cut (`last_seq`, max event time, lifetime
//! ingest/late counters), the emitted-output frontier (merged ranges),
//! and the **retained prefix** — the already-logged events that are
//! still live (unemitted bases, in-window probes) and must be replayed
//! ahead of the WAL tail.

use std::path::{Path, PathBuf};

use crate::codec::{crc32, Dec, Enc};
use crate::frontier::Frontier;
use crate::wal::LoggedEvent;
use oij_common::Side;

const MAGIC: u32 = 0x4F49_4A43; // "OIJC"
const VERSION: u32 = 1;

/// A decoded checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Maximum event sequence number logged before the cut: recovery
    /// skips WAL `Event` records at or below this (they are either in
    /// the retained prefix or provably dead).
    pub last_seq: u64,
    /// Maximum event time observed before the cut (watermark restore).
    pub max_ts: i64,
    /// Lifetime ingested-tuple count at the cut.
    pub total_ingested: u64,
    /// Lifetime lateness-violation count at the cut.
    pub total_late: u64,
    /// The emitted-output frontier at the cut.
    pub frontier: Frontier,
    /// Regular rows delivered to the sink so far.
    pub emitted_rows: u64,
    /// Late side-output markers delivered so far.
    pub emitted_late: u64,
    /// Still-live events to replay ahead of the WAL tail, in ingest
    /// (sequence) order.
    pub retained: Vec<LoggedEvent>,
}

fn encode(c: &Checkpoint) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(MAGIC);
    e.u32(VERSION);
    e.u64(c.last_seq);
    e.i64(c.max_ts);
    e.u64(c.total_ingested);
    e.u64(c.total_late);
    e.u64(c.emitted_rows);
    e.u64(c.emitted_late);
    let ranges: Vec<(u64, u64)> = c.frontier.ranges().collect();
    e.u32(ranges.len() as u32);
    for (s, end) in ranges {
        e.u64(s);
        e.u64(end);
    }
    e.u32(c.retained.len() as u32);
    for ev in &c.retained {
        e.u64(ev.seq);
        e.u8(match ev.side {
            Side::Base => 0,
            Side::Probe => 1,
        });
        e.i64(ev.ts);
        e.u64(ev.key);
        e.f64(ev.value);
        e.i64(ev.stamp);
    }
    e.finish()
}

fn decode(payload: &[u8]) -> Option<Checkpoint> {
    let mut d = Dec::new(payload);
    if d.u32()? != MAGIC || d.u32()? != VERSION {
        return None;
    }
    let last_seq = d.u64()?;
    let max_ts = d.i64()?;
    let total_ingested = d.u64()?;
    let total_late = d.u64()?;
    let emitted_rows = d.u64()?;
    let emitted_late = d.u64()?;
    let nranges = d.u32()?;
    let mut ranges = Vec::with_capacity(nranges as usize);
    for _ in 0..nranges {
        let s = d.u64()?;
        let end = d.u64()?;
        ranges.push((s, end));
    }
    let nretained = d.u32()?;
    let mut retained = Vec::with_capacity(nretained as usize);
    for _ in 0..nretained {
        retained.push(LoggedEvent {
            seq: d.u64()?,
            side: match d.u8()? {
                0 => Side::Base,
                1 => Side::Probe,
                _ => return None,
            },
            ts: d.i64()?,
            key: d.u64()?,
            value: d.f64()?,
            stamp: d.i64()?,
        });
    }
    d.exhausted().then_some(Checkpoint {
        last_seq,
        max_ts,
        total_ingested,
        total_late,
        frontier: Frontier::from_ranges(ranges),
        emitted_rows,
        emitted_late,
        retained,
    })
}

fn ckpt_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("ckpt-{id:08}.ckpt"))
}

/// Sorted ids of the checkpoints present under `dir`.
pub fn checkpoint_ids(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push(id);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Writes checkpoint `id` atomically (temp file + rename) and prunes all
/// but the two newest checkpoint files.
pub fn write(dir: &Path, id: u64, c: &Checkpoint) -> std::io::Result<()> {
    let payload = encode(c);
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    let tmp = dir.join(format!("ckpt-{id:08}.tmp"));
    std::fs::write(&tmp, &framed)?;
    std::fs::rename(&tmp, ckpt_path(dir, id))?;
    let ids = checkpoint_ids(dir)?;
    if ids.len() > 2 {
        for &old in &ids[..ids.len() - 2] {
            std::fs::remove_file(ckpt_path(dir, old))?;
        }
    }
    Ok(())
}

/// Loads the newest parseable checkpoint, trying newest-first. Returns
/// its id and contents, or `None` when no valid checkpoint exists.
pub fn load_newest(dir: &Path) -> std::io::Result<Option<(u64, Checkpoint)>> {
    for &id in checkpoint_ids(dir)?.iter().rev() {
        let bytes = std::fs::read(ckpt_path(dir, id))?;
        if bytes.len() < 8 {
            continue;
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(8..8 + len) else {
            continue;
        };
        if crc32(payload) != crc {
            continue;
        }
        if let Some(c) = decode(payload) {
            return Ok(Some((id, c)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::frontier_key;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("oij-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample(last_seq: u64) -> Checkpoint {
        let mut frontier = Frontier::new();
        for seq in 0..last_seq / 2 {
            frontier.insert(frontier_key(seq, false));
        }
        Checkpoint {
            last_seq,
            max_ts: 123_456,
            total_ingested: last_seq + 1,
            total_late: 3,
            emitted_rows: last_seq / 2,
            emitted_late: 0,
            frontier,
            retained: vec![LoggedEvent {
                seq: last_seq,
                side: Side::Base,
                ts: 99,
                key: 5,
                value: 2.25,
                stamp: 11,
            }],
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = tmpdir("roundtrip");
        write(&dir, 1, &sample(100)).unwrap();
        let (id, c) = load_newest(&dir).unwrap().expect("one checkpoint");
        assert_eq!(id, 1);
        assert_eq!(c.last_seq, 100);
        assert_eq!(c.max_ts, 123_456);
        assert_eq!(c.total_late, 3);
        assert_eq!(c.frontier.len(), 50);
        assert_eq!(c.retained.len(), 1);
        assert_eq!(c.retained[0].value, 2.25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keeps_two_newest_and_falls_back_past_corruption() {
        let dir = tmpdir("fallback");
        for id in 1..=4 {
            write(&dir, id, &sample(id * 10)).unwrap();
        }
        assert_eq!(checkpoint_ids(&dir).unwrap(), vec![3, 4], "pruned to 2");
        // Corrupt the newest: loading falls back to id 3.
        let newest = ckpt_path(&dir, 4);
        let mut bytes = std::fs::read(&newest).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let (id, c) = load_newest(&dir).unwrap().expect("fallback");
        assert_eq!(id, 3);
        assert_eq!(c.last_seq, 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmpdir("empty");
        assert!(load_newest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
