//! The segmented, CRC-framed write-ahead log.
//!
//! Layout: the durability directory holds segments named
//! `wal-NNNNNNNN.seg` (ascending). Each segment is a sequence of frames
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! and each payload is one tagged [`Record`]. A frame whose length field
//! runs past end-of-file, or whose CRC does not match, marks the **torn
//! tail**: replay stops there, and the repairing scan truncates the
//! segment at the last clean frame and removes any later segments (data
//! beyond a corrupt frame has no trustworthy framing).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use oij_common::Side;

use crate::codec::{crc32, Dec, Enc};

/// Largest payload a frame may claim. Real records are < 64 bytes; the
/// bound keeps a corrupt length field from allocating gigabytes.
const MAX_PAYLOAD: u32 = 1 << 20;

/// One ingested tuple as recorded in the WAL (and in checkpoints'
/// retained prefix). `stamp` is the driver's pre-observation watermark
/// at original ingest — replaying with the original stamp reproduces the
/// engines' late/not-late decisions bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggedEvent {
    /// Global arrival sequence number.
    pub seq: u64,
    /// Which stream the tuple belongs to.
    pub side: Side,
    /// Event-time timestamp, microseconds.
    pub ts: i64,
    /// Join key.
    pub key: u64,
    /// Aggregatable value.
    pub value: f64,
    /// Pre-observation watermark at original ingest, microseconds.
    pub stamp: i64,
}

impl LoggedEvent {
    /// Whether the tuple violated the lateness contract at original
    /// ingest (the engines' exact test: event time below the stamped
    /// watermark).
    #[inline]
    pub fn is_late(&self) -> bool {
        self.ts < self.stamp
    }
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An ingested tuple, logged by the driver before dispatch.
    Event(LoggedEvent),
    /// A row reached the sink; payload is its frontier key
    /// (`(seq << 1) | late`). Logged by the durable sink after delivery.
    Emitted(u64),
    /// Periodic watermark progress: the maximum event time observed so
    /// far. Redundant with the events themselves but lets recovery
    /// restore the tracker even when the maximal tuple was compacted.
    Progress(i64),
}

const TAG_EVENT: u8 = 0;
const TAG_EMITTED: u8 = 1;
const TAG_PROGRESS: u8 = 2;

fn side_code(side: Side) -> u8 {
    match side {
        Side::Base => 0,
        Side::Probe => 1,
    }
}

fn side_from(code: u8) -> Option<Side> {
    match code {
        0 => Some(Side::Base),
        1 => Some(Side::Probe),
        _ => None,
    }
}

/// Encodes a record payload (no frame header).
pub fn encode_record(r: &Record) -> Vec<u8> {
    let mut e = Enc::new();
    match r {
        Record::Event(ev) => {
            e.u8(TAG_EVENT);
            e.u64(ev.seq);
            e.u8(side_code(ev.side));
            e.i64(ev.ts);
            e.u64(ev.key);
            e.f64(ev.value);
            e.i64(ev.stamp);
        }
        Record::Emitted(key) => {
            e.u8(TAG_EMITTED);
            e.u64(*key);
        }
        Record::Progress(max_ts) => {
            e.u8(TAG_PROGRESS);
            e.i64(*max_ts);
        }
    }
    e.finish()
}

/// Decodes a record payload; `None` on any malformed shape.
pub fn decode_record(payload: &[u8]) -> Option<Record> {
    let mut d = Dec::new(payload);
    let rec = match d.u8()? {
        TAG_EVENT => Record::Event(LoggedEvent {
            seq: d.u64()?,
            side: side_from(d.u8()?)?,
            ts: d.i64()?,
            key: d.u64()?,
            value: d.f64()?,
            stamp: d.i64()?,
        }),
        TAG_EMITTED => Record::Emitted(d.u64()?),
        TAG_PROGRESS => Record::Progress(d.i64()?),
        _ => return None,
    };
    d.exhausted().then_some(rec)
}

/// Wraps a payload in its `[len][crc]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Path of segment `index` under `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

/// Sorted indices of the WAL segments present under `dir`.
pub fn segment_indices(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push(idx);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Result of scanning one segment's frames.
pub struct SegmentScan {
    /// Byte offset of the first unparseable frame (== file length when
    /// the segment ends cleanly).
    pub valid_bytes: u64,
    /// Whether the segment ended exactly at a frame boundary.
    pub clean: bool,
}

/// Reads every clean frame of `path` into `records`, stopping at the
/// first torn or corrupt frame.
pub fn read_segment(path: &Path, records: &mut Vec<Record>) -> std::io::Result<SegmentScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut pos = 0usize;
    loop {
        let Some(header) = buf.get(pos..pos + 8) else {
            // Fewer than 8 bytes left: clean EOF when exactly 0 remain.
            return Ok(SegmentScan {
                valid_bytes: pos as u64,
                clean: pos == buf.len(),
            });
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u32 > MAX_PAYLOAD {
            return Ok(SegmentScan {
                valid_bytes: pos as u64,
                clean: false,
            });
        }
        let Some(payload) = buf.get(pos + 8..pos + 8 + len) else {
            // Torn tail: the frame claims more bytes than the file has.
            return Ok(SegmentScan {
                valid_bytes: pos as u64,
                clean: false,
            });
        };
        if crc32(payload) != crc {
            return Ok(SegmentScan {
                valid_bytes: pos as u64,
                clean: false,
            });
        }
        match decode_record(payload) {
            Some(r) => records.push(r),
            // A frame that checksums but does not decode is corruption
            // all the same (e.g. an unknown tag from a torn rewrite).
            None => {
                return Ok(SegmentScan {
                    valid_bytes: pos as u64,
                    clean: false,
                })
            }
        }
        pos += 8 + len;
    }
}

/// Everything a directory scan recovers: the clean record prefix and
/// where the appender should resume.
pub struct WalScan {
    /// All records across segments, in append order, up to the first
    /// corruption.
    pub records: Vec<Record>,
    /// Index the appender should continue on (last existing segment, or
    /// 0 for an empty directory).
    pub tail_segment: u64,
    /// Bytes already in that segment.
    pub tail_bytes: u64,
}

/// Scans every segment under `dir` in order. With `repair`, truncates
/// the first corrupt segment at its last clean frame and deletes any
/// segments after it; without, the scan is read-only and simply stops
/// at the corruption.
pub fn scan_dir(dir: &Path, repair: bool) -> std::io::Result<WalScan> {
    let indices = segment_indices(dir)?;
    let mut records = Vec::new();
    let mut tail_segment = 0;
    let mut tail_bytes = 0;
    for (i, &idx) in indices.iter().enumerate() {
        let path = segment_path(dir, idx);
        let scan = read_segment(&path, &mut records)?;
        tail_segment = idx;
        tail_bytes = scan.valid_bytes;
        if !scan.clean {
            if repair {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_bytes)?;
                for &later in &indices[i + 1..] {
                    std::fs::remove_file(segment_path(dir, later))?;
                }
            }
            break;
        }
    }
    Ok(WalScan {
        records,
        tail_segment,
        tail_bytes,
    })
}

/// The WAL appender: owns the active segment file and rotates it when
/// it outgrows the configured size.
pub struct Appender {
    dir: PathBuf,
    segment_bytes: u64,
    index: u64,
    written: u64,
    file: Option<File>,
}

impl Appender {
    /// An appender resuming at `(index, written)` — the tail position a
    /// [`scan_dir`] reported. The file is opened lazily on first append.
    pub fn resume(dir: &Path, segment_bytes: u64, index: u64, written: u64) -> Self {
        Appender {
            dir: dir.to_path_buf(),
            segment_bytes,
            index,
            written,
            file: None,
        }
    }

    /// The index of the segment currently being appended to.
    pub fn active_segment(&self) -> u64 {
        self.index
    }

    fn open_active(&mut self) -> std::io::Result<&mut File> {
        if self.file.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, self.index))?;
            self.file = Some(f);
        }
        Ok(self.file.as_mut().expect("just opened"))
    }

    /// Appends one record, rotating first if the active segment is
    /// full. Returns the framed byte count written.
    pub fn append(&mut self, record: &Record) -> std::io::Result<u64> {
        if self.written >= self.segment_bytes {
            self.index += 1;
            self.written = 0;
            self.file = None;
        }
        let framed = frame(&encode_record(record));
        self.open_active()?.write_all(&framed)?;
        self.written += framed.len() as u64;
        Ok(framed.len() as u64)
    }

    /// Flushes the active segment to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let Some(f) = &self.file {
            f.sync_data()?;
        }
        Ok(())
    }

    /// Deletes every segment strictly older than the active one. Safe
    /// after a checkpoint: everything in older segments is covered by
    /// the checkpoint's retained prefix and frontier.
    pub fn prune_before_active(&self) -> std::io::Result<()> {
        for idx in segment_indices(&self.dir)? {
            if idx < self.index {
                std::fs::remove_file(segment_path(&self.dir, idx))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("oij-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn ev(seq: u64) -> Record {
        Record::Event(LoggedEvent {
            seq,
            side: Side::Probe,
            ts: seq as i64 * 10,
            key: 7,
            value: 0.5,
            stamp: -1,
        })
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        for r in [
            ev(42),
            Record::Emitted(85),
            Record::Progress(-3),
            Record::Event(LoggedEvent {
                seq: u64::MAX,
                side: Side::Base,
                ts: i64::MIN,
                key: u64::MAX,
                value: f64::NAN,
                stamp: i64::MAX,
            }),
        ] {
            let decoded = decode_record(&encode_record(&r)).expect("decodes");
            // NaN != NaN under PartialEq; compare bit patterns via debug.
            assert_eq!(format!("{decoded:?}"), format!("{r:?}"));
        }
        assert_eq!(decode_record(&[99]), None, "unknown tag rejected");
        assert_eq!(decode_record(&[]), None, "empty payload rejected");
    }

    #[test]
    fn append_scan_round_trips_across_rotation() {
        let dir = tmpdir("rotate");
        // Tiny segments force rotation after every record or two.
        let mut ap = Appender::resume(&dir, 64, 0, 0);
        for seq in 0..10 {
            ap.append(&ev(seq)).unwrap();
        }
        ap.append(&Record::Emitted(4)).unwrap();
        assert!(ap.active_segment() > 0, "rotation happened");
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.records.len(), 11);
        assert_eq!(scan.records[10], Record::Emitted(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_repair() {
        let dir = tmpdir("torn");
        let mut ap = Appender::resume(&dir, 1 << 20, 0, 0);
        for seq in 0..5 {
            ap.append(&ev(seq)).unwrap();
        }
        drop(ap);
        // Tear the tail: chop the last 7 bytes of the only segment.
        let path = segment_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 7)
            .unwrap();

        let ro = scan_dir(&dir, false).unwrap();
        assert_eq!(ro.records.len(), 4, "torn record dropped");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len - 7,
            "read-only scan must not modify the file"
        );

        let repaired = scan_dir(&dir, true).unwrap();
        assert_eq!(repaired.records.len(), 4);
        let new_len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(new_len, repaired.tail_bytes);
        assert!(new_len < len - 7, "truncated to the last clean frame");

        // Appending after repair yields a fully clean log again.
        let mut ap = Appender::resume(&dir, 1 << 20, repaired.tail_segment, repaired.tail_bytes);
        ap.append(&ev(99)).unwrap();
        let again = scan_dir(&dir, false).unwrap();
        assert_eq!(again.records.len(), 5);
        assert_eq!(again.records[4], ev(99));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_bit_flip_rejects_the_record_and_everything_after() {
        let dir = tmpdir("bitflip");
        let mut ap = Appender::resume(&dir, 1 << 20, 0, 0);
        for seq in 0..6 {
            ap.append(&ev(seq)).unwrap();
        }
        drop(ap);
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the third record's payload (frames are
        // 8 + 42 = 50 bytes; offset 2*50 + 8 lands in payload three).
        bytes[2 * 50 + 20] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(
            scan.records.len(),
            2,
            "corrupt record and all later ones rejected"
        );
        assert_eq!(scan.records[0], ev(0));
        assert_eq!(scan.records[1], ev(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_drops_later_segments_on_repair() {
        let dir = tmpdir("midseg");
        let mut ap = Appender::resume(&dir, 100, 0, 0);
        for seq in 0..8 {
            ap.append(&ev(seq)).unwrap();
        }
        drop(ap);
        let indices = segment_indices(&dir).unwrap();
        assert!(indices.len() >= 3, "need several segments: {indices:?}");
        // Corrupt the second segment's first frame.
        let victim = segment_path(&dir, indices[1]);
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[9] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();

        let scan = scan_dir(&dir, true).unwrap();
        assert_eq!(scan.tail_segment, indices[1]);
        assert_eq!(scan.tail_bytes, 0);
        let left = segment_indices(&dir).unwrap();
        assert_eq!(left, indices[..2].to_vec(), "later segments removed");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
