//! Durability configuration: where the log lives and how hard it tries
//! to reach stable storage.

use std::path::PathBuf;
use std::time::Duration as StdDuration;

use oij_common::Duration;

/// How often the WAL file is flushed to stable storage (`fsync`).
///
/// The policy trades durability against ingest latency (DESIGN.md §11):
/// the log is always *written* per record, so every policy recovers
/// everything up to the OS page cache; the policy only decides how much
/// a whole-machine power loss can lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync explicitly; rely on the OS writing back dirty pages.
    /// Survives process crashes (the simulated `Crash` fault), not power
    /// loss. The default, and the only policy benchmarks should use.
    Never,
    /// Fsync at most once per interval, piggybacked on appends.
    Interval(StdDuration),
    /// Fsync after every appended record batch. Maximal durability,
    /// pays one `fdatasync` per ingested tuple.
    EveryBatch,
}

/// Configuration for the durability subsystem
/// (`EngineConfig::durability`; `None` disables durability entirely).
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments (`wal-NNNNNNNN.seg`) and
    /// checkpoints (`ckpt-NNNNNNNN.ckpt`). Created if missing; a
    /// non-empty directory means "resume from this state".
    pub dir: PathBuf,
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Take a checkpoint after this many ingested tuples.
    pub checkpoint_every: u64,
    /// Rotate to a new WAL segment once the active one exceeds this
    /// many bytes.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// A configuration with production-shaped defaults: no explicit
    /// fsync, checkpoint every 4096 tuples, 4 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Never,
            checkpoint_every: 4096,
            segment_bytes: 4 << 20,
        }
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the checkpoint cadence (in ingested tuples).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Sets the WAL segment rotation threshold in bytes.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1024);
        self
    }
}

/// What the checkpoint compactor needs to know about the query to prune
/// the retained-event prefix safely (see `runtime::checkpoint_locked`).
#[derive(Debug, Clone, Copy)]
pub struct RetentionSpec {
    /// How far probe retention reaches back from the anchor. Engines
    /// pass the full window length `PRE + FOL`, matching their own
    /// expiration bound, so compaction never drops a probe a joiner
    /// would still have in its buffers.
    pub extent: Duration,
    /// The query lateness bound `l`.
    pub lateness: Duration,
    /// Whether the engine diverts late tuples to side-output markers
    /// (`LatePolicy::SideOutput` on Scale-OIJ). Diverted tuples never
    /// join, so they are retained only until their marker is emitted.
    /// When `false` the engines process late tuples best-effort — they
    /// join like any other tuple — and compaction must treat them
    /// exactly like on-time events.
    pub side_output: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_degenerate_values() {
        let c = DurabilityConfig::new("/tmp/x")
            .with_checkpoint_every(0)
            .with_segment_bytes(0);
        assert_eq!(c.checkpoint_every, 1);
        assert_eq!(c.segment_bytes, 1024);
        assert_eq!(c.fsync, FsyncPolicy::Never);
    }
}
