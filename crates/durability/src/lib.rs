//! # oij-durability — WAL, checkpoints and crash recovery for the OIJ engines
//!
//! This crate turns the engines' "fail cleanly" story (structured
//! `WorkerFailed`, bounded teardown) into "fail and come back": an
//! engine killed mid-run can restart from its durability directory and
//! produce output **bit-identical** to an uninterrupted run
//! (DESIGN.md §11).
//!
//! Three pieces:
//!
//! * a segmented, CRC-framed **write-ahead log** ([`wal`]) recording
//!   every ingested tuple (with the pre-observation watermark stamp
//!   that makes replay deterministic), every emitted row's frontier
//!   key, and periodic watermark progress — with configurable fsync
//!   ([`FsyncPolicy`]) and torn-tail truncation on replay;
//! * periodic **checkpoints** ([`checkpoint`]) snapshotting the
//!   compacted retained-event prefix plus the emitted-output
//!   [`Frontier`], so replay starts from the last cut instead of log
//!   origin;
//! * the shared [`DurabilityRuntime`] and the read-only recovery
//!   [`scan`] that `oij_core::recovery` drives: replayed events go back
//!   through the engines with their original stamps, and the frontier
//!   deduplicates rows that already reached the sink (exactly-once to
//!   the sink under the simulated `Crash` fault).
//!
//! The crate deliberately knows nothing about engines, sinks or
//! faults — it stores and restores facts. `oij-core` wires it in
//! behind `EngineConfig::durability` (default `None` = zero cost).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod frontier;
pub mod runtime;
pub mod wal;

pub use config::{DurabilityConfig, FsyncPolicy, RetentionSpec};
pub use frontier::{frontier_key, Frontier};
pub use runtime::{scan, DurabilityMetrics, DurabilityRuntime, RecoveredLog};
pub use wal::LoggedEvent;
