//! The engine-side durability runtime: one shared object serializing
//! WAL appends, frontier updates and checkpoints behind a single mutex.
//!
//! One runtime is shared between the driver (which records every
//! ingested tuple before dispatching it) and the per-joiner durable
//! sinks (which consult and extend the emitted-output frontier). The
//! mutex lives entirely inside this crate — `oij-core` only calls
//! methods — and nothing here nests under any engine lock, so the
//! workspace's declared empty lock order is preserved.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration as StdDuration, Instant};

use oij_common::{Error, Result};

use crate::checkpoint::{self, Checkpoint};
use crate::config::{DurabilityConfig, FsyncPolicy, RetentionSpec};
use crate::frontier::{frontier_key, Frontier};
use crate::wal::{scan_dir, Appender, LoggedEvent, Record};

/// Cadence of `Progress` records: one per this many ingested tuples.
const PROGRESS_EVERY: u64 = 64;

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Durability(format!("{what}: {e}"))
}

/// Counters the engine folds into `RunStats` at finish.
#[derive(Debug, Clone, Default)]
pub struct DurabilityMetrics {
    /// Bytes appended to the WAL by this process.
    pub wal_bytes_written: u64,
    /// Events replayed through `push_stamped` after recovery.
    pub wal_records_replayed: u64,
    /// Checkpoints taken by this process.
    pub checkpoint_count: u64,
    /// Span from opening a non-empty durability directory to the last
    /// replayed record (zero for fresh runs).
    pub recovery_duration: StdDuration,
    /// Re-emissions suppressed by the frontier during replay.
    pub rows_deduped_on_recovery: u64,
    /// Lifetime regular rows delivered to the sink (frontier even keys).
    pub emitted_rows: u64,
    /// Lifetime late side-output markers delivered (frontier odd keys).
    pub emitted_late: u64,
    /// Lifetime ingested tuples recorded in the WAL.
    pub total_ingested: u64,
    /// Lifetime lateness violations recorded in the WAL.
    pub total_late: u64,
}

struct Inner {
    dir: PathBuf,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
    retention: RetentionSpec,
    appender: Appender,
    frontier: Frontier,
    /// Logged events still live (unemitted bases, in-window probes, and
    /// everything after the last checkpoint cut), in sequence order.
    retained: Vec<LoggedEvent>,
    /// Maximum event sequence number ever logged.
    last_seq: Option<u64>,
    /// Maximum event time ever observed.
    max_ts: i64,
    total_ingested: u64,
    total_late: u64,
    emitted_rows: u64,
    emitted_late: u64,
    wal_bytes: u64,
    checkpoint_count: u64,
    next_ckpt_id: u64,
    since_ckpt: u64,
    since_progress: u64,
    last_sync: Instant,
    deduped: u64,
    replayed: u64,
    recovery_started: Option<Instant>,
    recovery_duration: StdDuration,
}

/// Shared durability state for one engine (see module docs).
pub struct DurabilityRuntime {
    inner: Mutex<Inner>,
}

// Sinks embed the runtime and derive Debug; the runtime's state is one
// mutex-guarded blob, and Debug must not take the lock (it may run while
// a holder is mid-append), so print nothing but the type.
impl std::fmt::Debug for DurabilityRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityRuntime").finish_non_exhaustive()
    }
}

impl DurabilityRuntime {
    /// Opens (or creates) the durability directory. A non-empty
    /// directory means "resume": the newest parseable checkpoint is
    /// loaded, the WAL tail is scanned with torn-tail repair, and the
    /// frontier, lifetime counters and retained-event prefix are
    /// restored. The caller replays [`Self::was_recovered`] state via
    /// the recovery driver (`oij_core::recovery`).
    pub fn open(cfg: &DurabilityConfig, retention: RetentionSpec) -> Result<Self> {
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| io_err("creating durability directory", e))?;
        let loaded =
            checkpoint::load_newest(&cfg.dir).map_err(|e| io_err("loading checkpoint", e))?;
        let (next_ckpt_id, ckpt) = match loaded {
            Some((id, c)) => (id + 1, Some(c)),
            None => (1, None),
        };
        let mut frontier = Frontier::new();
        let mut retained = Vec::new();
        let mut last_seq = None;
        let mut max_ts = i64::MIN;
        let (mut total_ingested, mut total_late) = (0, 0);
        let (mut emitted_rows, mut emitted_late) = (0, 0);
        let mut recovered = false;
        if let Some(c) = ckpt {
            frontier = c.frontier;
            retained = c.retained;
            last_seq = Some(c.last_seq);
            max_ts = c.max_ts;
            total_ingested = c.total_ingested;
            total_late = c.total_late;
            emitted_rows = c.emitted_rows;
            emitted_late = c.emitted_late;
            recovered = true;
        }
        let scan = scan_dir(&cfg.dir, true).map_err(|e| io_err("scanning WAL", e))?;
        for record in scan.records {
            recovered = true;
            match record {
                Record::Event(ev) => {
                    // Events at or below the checkpoint cut are covered
                    // by the retained prefix (or provably dead).
                    if last_seq.is_some_and(|ls| ev.seq <= ls) {
                        continue;
                    }
                    last_seq = Some(last_seq.map_or(ev.seq, |ls: u64| ls.max(ev.seq)));
                    max_ts = max_ts.max(ev.ts);
                    total_ingested += 1;
                    if ev.is_late() {
                        total_late += 1;
                    }
                    retained.push(ev);
                }
                Record::Emitted(key) => {
                    if frontier.insert(key) {
                        if key & 1 == 1 {
                            emitted_late += 1;
                        } else {
                            emitted_rows += 1;
                        }
                    }
                }
                Record::Progress(ts) => max_ts = max_ts.max(ts),
            }
        }
        let appender = Appender::resume(
            &cfg.dir,
            cfg.segment_bytes,
            scan.tail_segment,
            scan.tail_bytes,
        );
        Ok(DurabilityRuntime {
            inner: Mutex::new(Inner {
                dir: cfg.dir.clone(),
                fsync: cfg.fsync,
                checkpoint_every: cfg.checkpoint_every.max(1),
                retention,
                appender,
                frontier,
                retained,
                last_seq,
                max_ts,
                total_ingested,
                total_late,
                emitted_rows,
                emitted_late,
                wal_bytes: 0,
                checkpoint_count: 0,
                next_ckpt_id,
                since_ckpt: 0,
                since_progress: 0,
                last_sync: Instant::now(),
                deduped: 0,
                replayed: 0,
                recovery_started: recovered.then(Instant::now),
                recovery_duration: StdDuration::ZERO,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // The runtime must stay usable while a crashed run is torn down,
        // so a panicking joiner mid-append must not poison everyone
        // else; appends are all-or-nothing at frame granularity anyway.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether `open` found existing state to resume from.
    pub fn was_recovered(&self) -> bool {
        self.lock().recovery_started.is_some()
    }

    /// The restored maximum event time, for re-seeding the driver's
    /// watermark tracker (`None` when nothing was recovered or no event
    /// was ever observed).
    pub fn recovered_max_ts(&self) -> Option<i64> {
        let inner = self.lock();
        (inner.recovery_started.is_some() && inner.max_ts != i64::MIN).then_some(inner.max_ts)
    }

    /// Records one ingested tuple ahead of dispatch. Called by the
    /// driver thread for every live (non-replay) data event; triggers
    /// progress records, fsync per policy, and checkpoints.
    pub fn record_event(&self, ev: LoggedEvent) -> Result<()> {
        let mut inner = self.lock();
        let bytes = inner
            .appender
            .append(&Record::Event(ev))
            .map_err(|e| io_err("appending event", e))?;
        inner.wal_bytes += bytes;
        inner.last_seq = Some(inner.last_seq.map_or(ev.seq, |ls| ls.max(ev.seq)));
        inner.max_ts = inner.max_ts.max(ev.ts);
        inner.total_ingested += 1;
        if ev.is_late() {
            inner.total_late += 1;
        }
        inner.retained.push(ev);
        inner.since_progress += 1;
        if inner.since_progress >= PROGRESS_EVERY {
            inner.since_progress = 0;
            let progress = Record::Progress(inner.max_ts);
            let bytes = inner
                .appender
                .append(&progress)
                .map_err(|e| io_err("appending progress", e))?;
            inner.wal_bytes += bytes;
        }
        maybe_sync(&mut inner)?;
        inner.since_ckpt += 1;
        if inner.since_ckpt >= inner.checkpoint_every {
            checkpoint_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Sink-side admission: `true` when the row identified by `fkey`
    /// has not been delivered yet. A `false` counts as a recovery dedup
    /// (the only way a frontier hit can happen is replay re-emission).
    pub fn admit(&self, fkey: u64) -> bool {
        let mut inner = self.lock();
        if inner.frontier.contains(fkey) {
            inner.deduped += 1;
            false
        } else {
            true
        }
    }

    /// Sink-side confirmation: the row for `fkey` reached the inner
    /// sink; log it and extend the frontier.
    pub fn mark_emitted(&self, fkey: u64) -> Result<()> {
        let mut inner = self.lock();
        let bytes = inner
            .appender
            .append(&Record::Emitted(fkey))
            .map_err(|e| io_err("appending emitted", e))?;
        inner.wal_bytes += bytes;
        if inner.frontier.insert(fkey) {
            if fkey & 1 == 1 {
                inner.emitted_late += 1;
            } else {
                inner.emitted_rows += 1;
            }
        }
        maybe_sync(&mut inner)
    }

    /// Notes one replayed record (driver-side, per `push_stamped`).
    pub fn note_replayed(&self) {
        let mut inner = self.lock();
        inner.replayed += 1;
        if let Some(started) = inner.recovery_started {
            inner.recovery_duration = started.elapsed();
        }
    }

    /// Snapshot of the counters for `RunStats`.
    pub fn metrics(&self) -> DurabilityMetrics {
        let inner = self.lock();
        DurabilityMetrics {
            wal_bytes_written: inner.wal_bytes,
            wal_records_replayed: inner.replayed,
            checkpoint_count: inner.checkpoint_count,
            recovery_duration: inner.recovery_duration,
            rows_deduped_on_recovery: inner.deduped,
            emitted_rows: inner.emitted_rows,
            emitted_late: inner.emitted_late,
            total_ingested: inner.total_ingested,
            total_late: inner.total_late,
        }
    }
}

fn maybe_sync(inner: &mut Inner) -> Result<()> {
    match inner.fsync {
        FsyncPolicy::Never => Ok(()),
        FsyncPolicy::EveryBatch => inner.appender.sync().map_err(|e| io_err("fsync", e)),
        FsyncPolicy::Interval(every) => {
            if inner.last_sync.elapsed() >= every {
                inner.appender.sync().map_err(|e| io_err("fsync", e))?;
                inner.last_sync = Instant::now();
            }
            Ok(())
        }
    }
}

/// Takes a checkpoint: compacts the retained prefix against the
/// frontier and the window retention bound, writes the snapshot
/// atomically, and prunes WAL segments older than the active one.
fn checkpoint_locked(inner: &mut Inner) -> Result<()> {
    inner.since_ckpt = 0;
    let Some(last_seq) = inner.last_seq else {
        return Ok(());
    };
    let extent = inner.retention.extent.as_micros();
    let lateness = inner.retention.lateness.as_micros();
    // The watermark proxy: max observed event time minus lateness.
    let wm = inner.max_ts.saturating_sub(lateness);
    // A probe is still needed by some unemitted base `b` when its event
    // time reaches back into b's window (`p.ts >= b.ts - PRE`), or by a
    // future base, whose event time is at least the current watermark
    // for non-late arrivals. Anchor on the smaller, pad by lateness;
    // retaining extra probes is safe (replay re-inserts, they re-expire).
    let side_output = inner.retention.side_output;
    let mut min_live_base = i64::MAX;
    for ev in &inner.retained {
        // Under SideOutput a late base never emits a regular row, so its
        // even key stays out of the frontier forever — excluding it here
        // keeps one straggler from pinning retention indefinitely. Under
        // drop policies late bases join best-effort and anchor like any
        // other unemitted base.
        if ev.side == oij_common::Side::Base
            && !(side_output && ev.is_late())
            && !inner.frontier.contains(frontier_key(ev.seq, false))
        {
            min_live_base = min_live_base.min(ev.ts);
        }
    }
    let anchor = wm.min(min_live_base);
    let bound = anchor.saturating_sub(extent).saturating_sub(lateness);
    let frontier = &inner.frontier;
    inner.retained.retain(|ev| {
        if side_output && ev.is_late() {
            // Diverted to a marker row, never joins: live only while the
            // marker is still owed.
            !frontier.contains(frontier_key(ev.seq, true))
        } else {
            // On-time events — and late events under drop policies, which
            // the engines process best-effort: a base is live until its
            // row is emitted, a probe while its event time can still fall
            // inside a live or future base's window.
            match ev.side {
                oij_common::Side::Base => !frontier.contains(frontier_key(ev.seq, false)),
                oij_common::Side::Probe => ev.ts >= bound,
            }
        }
    });
    let snapshot = Checkpoint {
        last_seq,
        max_ts: inner.max_ts,
        total_ingested: inner.total_ingested,
        total_late: inner.total_late,
        emitted_rows: inner.emitted_rows,
        emitted_late: inner.emitted_late,
        frontier: inner.frontier.clone(),
        retained: inner.retained.clone(),
    };
    checkpoint::write(&inner.dir, inner.next_ckpt_id, &snapshot)
        .map_err(|e| io_err("writing checkpoint", e))?;
    inner.next_ckpt_id += 1;
    inner.checkpoint_count += 1;
    inner
        .appender
        .prune_before_active()
        .map_err(|e| io_err("pruning WAL segments", e))?;
    Ok(())
}

/// What a read-only pre-spawn scan recovers for the recovery driver.
#[derive(Debug, Default)]
pub struct RecoveredLog {
    /// Events to replay through `push_stamped`, in sequence order: the
    /// checkpoint's retained prefix followed by the WAL tail.
    pub events: Vec<LoggedEvent>,
    /// Maximum sequence number ever logged; the ingest harness resumes
    /// feeding from the next sequence. `None` when nothing was logged.
    pub last_seq: Option<u64>,
}

/// Read-only recovery scan: what is on disk, without repairing or
/// opening anything for append. The subsequent engine spawn re-opens
/// the directory (with repair) and restores the same state.
pub fn scan(cfg: &DurabilityConfig) -> Result<RecoveredLog> {
    if !cfg.dir.exists() {
        return Ok(RecoveredLog::default());
    }
    let loaded = checkpoint::load_newest(&cfg.dir).map_err(|e| io_err("loading checkpoint", e))?;
    let (mut events, mut last_seq) = match loaded {
        Some((_, c)) => (c.retained, Some(c.last_seq)),
        None => (Vec::new(), None),
    };
    let cut = last_seq;
    let wal = scan_dir(&cfg.dir, false).map_err(|e| io_err("scanning WAL", e))?;
    for record in wal.records {
        if let Record::Event(ev) = record {
            if cut.is_some_and(|ls| ev.seq <= ls) {
                continue;
            }
            last_seq = Some(last_seq.map_or(ev.seq, |ls: u64| ls.max(ev.seq)));
            events.push(ev);
        }
    }
    Ok(RecoveredLog { events, last_seq })
}
