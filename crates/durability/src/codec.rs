//! Little-endian binary codec and the CRC-32 (IEEE) used to frame WAL
//! and checkpoint records. Hand-rolled: the workspace is offline and the
//! format is a dozen fixed-width fields.

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, as used by zlib/gzip).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Sequential little-endian writer over a growable buffer.
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for Enc {
    fn default() -> Self {
        Enc::new()
    }
}

/// Sequential little-endian reader over a byte slice. Every accessor
/// returns `None` past the end — a truncated payload decodes to `None`
/// instead of panicking, so callers can treat it as corruption.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Whether every byte has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn codec_round_trips() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(3.5);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX - 3));
        assert_eq!(d.i64(), Some(-42));
        assert_eq!(d.f64(), Some(3.5));
        assert!(d.exhausted());
        assert_eq!(d.u8(), None, "reads past the end return None");
    }
}
