//! Crash-recovery chaos tests (DESIGN.md §11): kill an engine mid-run
//! with the simulated-process-death `Crash` fault, recover from the
//! durability directory, resume live ingest, and require the union of
//! pre-crash and post-recovery sink output to equal an uninterrupted
//! run — no missing rows, no duplicates — plus the sink-retry policy
//! tests that ride on the same fault machinery.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration as StdDuration;

use oij::durability::recover;
use oij::prelude::*;
use oij::Error;

/// Fresh scratch directory per test run (pid + counter: parallel test
/// binaries and threads never collide).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("oij-recovery-{tag}-{}-{n}", std::process::id()))
}

/// Runs the test body under a watchdog thread: a hang turns into a loud
/// panic instead of a stuck CI job (same idiom as tests/robustness.rs).
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(StdDuration::from_secs(secs)) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            t.join().expect("test body panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: test exceeded {secs}s — recovery failed to stay bounded")
        }
    }
}

/// A lateness-compliant disordered workload: jitter stays well inside
/// the lateness budget so watermark-mode engines are exact.
fn disordered(tuples: usize, keys: u64, disorder_us: i64, seed: u64) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

fn watermark_query() -> OijQuery {
    OijQuery::builder()
        .preceding(Duration::from_micros(120))
        .lateness(Duration::from_micros(200))
        .agg(AggSpec::Sum)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap()
}

fn sorted(mut rows: Vec<FeatureRow>) -> Vec<FeatureRow> {
    rows.sort_by_key(|r| (r.seq, r.late));
    rows
}

fn assert_rows_equal(got: &[FeatureRow], want: &[FeatureRow], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    for (g, o) in got.iter().zip(want) {
        assert_eq!(g.seq, o.seq, "{ctx}");
        assert_eq!(g.late, o.late, "{ctx}: seq {}", g.seq);
        assert_eq!(g.matched, o.matched, "{ctx}: seq {}", g.seq);
        assert!(
            g.agg_approx_eq(o, 1e-9),
            "{ctx}: seq {} — {:?} vs {:?}",
            g.seq,
            g.agg,
            o.agg
        );
    }
}

/// Phase 1 of every crash scenario: run the durable engine with a
/// `Crash` fault until the failure surfaces, abort, and return the rows
/// that reached the sink before the simulated process death.
fn run_until_crash(kind: EngineKind, cfg: EngineConfig, events: &[Event]) -> Vec<FeatureRow> {
    let (sink, rows) = Sink::collect();
    let mut engine = oij::durability::spawn_engine(kind, cfg, sink).unwrap();
    let mut crashed = false;
    for ev in events {
        if let Err(e) = engine.push(ev.clone()) {
            assert!(
                matches!(&e, Error::WorkerFailed { cause, .. } if cause.contains("simulated process crash")),
                "expected the crash fault, got {e:?}"
            );
            crashed = true;
            break;
        }
    }
    if !crashed {
        // Roomy channels can absorb the whole stream; the dead worker
        // then surfaces at finish.
        let e = engine.finish().expect_err("crash fault must surface");
        assert!(
            matches!(&e, Error::WorkerFailed { cause, .. } if cause.contains("simulated process crash")),
            "expected the crash fault, got {e:?}"
        );
    } else {
        let _ = engine.abort();
    }
    drop(engine);
    let out = rows.lock().clone();
    out
}

/// Phase 2: recover from the durability directory, resume live ingest
/// past the last logged sequence, finish, and return (rows, stats).
fn recover_and_resume(
    kind: EngineKind,
    cfg: EngineConfig,
    events: &[Event],
) -> (Vec<FeatureRow>, RunStats) {
    let (sink, rows) = Sink::collect();
    let (mut engine, report) = recover(kind, cfg, sink).unwrap();
    let resume_after = report.last_seq.expect("the crashed run logged events");
    assert!(report.replayed > 0, "recovery must replay retained events");
    for ev in events.iter().filter(|e| e.seq > resume_after) {
        engine.push(ev.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();
    let out = rows.lock().clone();
    (out, stats)
}

/// Uninterrupted reference run of the same engine without durability.
fn reference_run(
    kind: EngineKind,
    cfg: EngineConfig,
    events: &[Event],
) -> (Vec<FeatureRow>, RunStats) {
    let (sink, rows) = Sink::collect();
    let mut engine = oij::durability::spawn_engine(kind, cfg, sink).unwrap();
    for ev in events {
        engine.push(ev.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();
    let out = rows.lock().clone();
    (out, stats)
}

/// One full crash → recover → diff cycle. Returns the recovered run's
/// stats for scenario-specific assertions.
fn crash_cycle(
    kind: EngineKind,
    mut base_cfg: EngineConfig,
    events: &[Event],
    crash_worker: usize,
    crash_ordinal: u64,
    dir: &PathBuf,
) -> RunStats {
    let ctx = format!("{kind:?} @ worker {crash_worker} ordinal {crash_ordinal}");
    let durable = DurabilityConfig::new(dir.clone());
    // Uninterrupted reference: same engine, no durability, no faults.
    let (want, want_stats) = reference_run(kind, base_cfg.clone(), events);
    let want = sorted(want);

    // Phase 1: crash.
    let crash_cfg = {
        let mut c = base_cfg.clone().with_durability(durable.clone());
        c.faults = FaultPlan::none().crash_at(crash_worker, crash_ordinal);
        c.send_timeout = StdDuration::from_millis(500);
        c.channel_capacity = 16;
        c
    };
    let pre = run_until_crash(kind, crash_cfg, events);

    // Phase 2: recover + resume with a clean fault plan.
    base_cfg.durability = Some(durable);
    let (post, stats) = recover_and_resume(kind, base_cfg, events);

    // Exactly-once: the union must have no duplicate row identity...
    let mut seen = HashSet::new();
    for r in pre.iter().chain(&post) {
        assert!(
            seen.insert((r.seq, r.late)),
            "{ctx}: duplicate row seq {} late {}",
            r.seq,
            r.late
        );
    }
    // ...and must equal the uninterrupted run's output.
    let union = sorted(pre.into_iter().chain(post).collect());
    assert_rows_equal(&union, &want, &ctx);

    // Lifetime counters survive the crash: the recovered run reports the
    // same totals as the uninterrupted one.
    assert_eq!(stats.input_tuples, want_stats.input_tuples, "{ctx}");
    assert_eq!(stats.results, want_stats.results, "{ctx}");
    assert!(stats.wal_records_replayed > 0, "{ctx}");
    assert!(stats.wal_bytes_written > 0, "{ctx}");
    let _ = std::fs::remove_dir_all(dir);
    stats
}

// ---------------------------------------------------------------------------
// The engine × crash-ordinal matrix
// ---------------------------------------------------------------------------

#[test]
fn watermark_engines_recover_bit_identical_across_crash_ordinals() {
    with_watchdog(300, || {
        let events = disordered(4_000, 6, 150, 0xC0FFEE);
        for kind in [
            EngineKind::KeyOij,
            EngineKind::ScaleOij,
            EngineKind::SplitJoin,
        ] {
            for ordinal in [0u64, 7, 113] {
                let cfg = EngineConfig::new(watermark_query(), 2).unwrap();
                let dir = scratch_dir("matrix");
                crash_cycle(kind, cfg, &events, 0, ordinal, &dir);
            }
        }
    });
}

#[test]
fn openmldb_recovers_on_in_order_streams() {
    with_watchdog(120, || {
        // Eager emission is deterministic at J=1 with in-order input.
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(100))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Eager)
            .build()
            .unwrap();
        let events = disordered(3_000, 5, 0, 0xBEEF);
        for ordinal in [0u64, 13] {
            let cfg = EngineConfig::new(query.clone(), 1).unwrap();
            let dir = scratch_dir("openmldb");
            crash_cycle(EngineKind::OpenMldb, cfg, &events, 0, ordinal, &dir);
        }
    });
}

#[test]
fn mid_batch_crash_recovers_exactly() {
    with_watchdog(120, || {
        // batch_size 8 with the crash at data-message ordinal 13: the
        // fault fires on the 6th message of the victim's second batch,
        // never on a batch boundary.
        let events = disordered(4_000, 6, 150, 0xFACE);
        let cfg = EngineConfig::new(watermark_query(), 2)
            .unwrap()
            .with_batch_size(8);
        let dir = scratch_dir("midbatch");
        crash_cycle(EngineKind::KeyOij, cfg, &events, 0, 13, &dir);
    });
}

#[test]
fn crash_between_checkpoint_and_wal_tail_dedups_emitted_rows() {
    with_watchdog(120, || {
        // A tight checkpoint cadence guarantees the crash lands after at
        // least one checkpoint, with live WAL tail behind it; recovery
        // must stitch both together and dedup already-delivered rows.
        let events = disordered(4_000, 6, 150, 0xABBA);
        let mut cfg = EngineConfig::new(watermark_query(), 2).unwrap();
        let dir = scratch_dir("ckpt");
        let durable = DurabilityConfig::new(dir.clone()).with_checkpoint_every(256);
        let (want, _) = reference_run(EngineKind::ScaleOij, cfg.clone(), &events);
        let want = sorted(want);

        let crash_cfg = {
            let mut c = cfg.clone().with_durability(durable.clone());
            c.faults = FaultPlan::none().crash_at(0, 1_200);
            c.send_timeout = StdDuration::from_millis(500);
            c.channel_capacity = 16;
            c
        };
        let pre = run_until_crash(EngineKind::ScaleOij, crash_cfg, &events);
        assert!(
            !pre.is_empty(),
            "a late crash must leave already-delivered rows to dedup"
        );

        cfg.durability = Some(durable);
        let (post, stats) = recover_and_resume(EngineKind::ScaleOij, cfg, &events);
        assert!(stats.checkpoint_count >= 1, "checkpoints must have fired");
        assert!(
            stats.rows_deduped_on_recovery > 0,
            "replay must have suppressed already-delivered rows"
        );
        let union = sorted(pre.into_iter().chain(post).collect());
        assert_rows_equal(&union, &want, "checkpoint+tail");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

// ---------------------------------------------------------------------------
// Index-backend axis: recovery must be backend-invariant
// ---------------------------------------------------------------------------

#[test]
fn watermark_recovery_is_backend_invariant() {
    with_watchdog(300, || {
        // The WAL logs events, not index state: replay rebuilds the index
        // through whichever backend the config selects, so the full
        // crash → recover → diff cycle must pass on all of them.
        let events = disordered(4_000, 6, 150, 0x1DE9);
        for backend in IndexBackend::ALL {
            let cfg = EngineConfig::new(watermark_query(), 2)
                .unwrap()
                .with_index_backend(backend);
            let dir = scratch_dir(backend.label());
            crash_cycle(EngineKind::ScaleOij, cfg, &events, 0, 57, &dir);
        }
    });
}

#[test]
fn compaction_bound_agrees_with_index_eviction_across_backends() {
    with_watchdog(300, || {
        // Regression pin for the eviction/retention contract: every
        // backend's `evict_below` drops tuples with `ts < watermark −
        // window length`, while the checkpoint compactor retains probes
        // down to `anchor − extent − lateness` (RetentionSpec::extent is
        // the window length, anchor ≤ watermark) — one extra lateness pad
        // *below* any backend's eviction bound. If a backend ever evicted
        // more aggressively than the compactor assumes (or the compactor
        // pruned above a backend's bound), a crash landing after many
        // compactions would replay an incomplete window and this diff
        // would catch the missing rows.
        let events = disordered(4_000, 6, 150, 0x0B0B);
        for backend in IndexBackend::ALL {
            let ctx = format!("retention on {}", backend.label());
            let mut cfg = EngineConfig::new(watermark_query(), 2)
                .unwrap()
                .with_index_backend(backend);
            let dir = scratch_dir("retention");
            // Tight cadence: compaction fires repeatedly before the late
            // crash, so the checkpoint's retained prefix is as small as
            // the bound allows when replay reconstructs the index.
            let durable = DurabilityConfig::new(dir.clone()).with_checkpoint_every(256);
            let (want, _) = reference_run(EngineKind::ScaleOij, cfg.clone(), &events);
            let want = sorted(want);

            let crash_cfg = {
                let mut c = cfg.clone().with_durability(durable.clone());
                c.faults = FaultPlan::none().crash_at(0, 1_200);
                c.send_timeout = StdDuration::from_millis(500);
                c.channel_capacity = 16;
                c
            };
            let pre = run_until_crash(EngineKind::ScaleOij, crash_cfg, &events);

            cfg.durability = Some(durable);
            let (post, stats) = recover_and_resume(EngineKind::ScaleOij, cfg, &events);
            assert!(
                stats.checkpoint_count >= 1,
                "{ctx}: compaction must have fired"
            );
            let union = sorted(pre.into_iter().chain(post).collect());
            assert_rows_equal(&union, &want, &ctx);
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
}

// ---------------------------------------------------------------------------
// Durable-but-uninterrupted runs and fsync policies
// ---------------------------------------------------------------------------

#[test]
fn durable_uninterrupted_run_matches_non_durable() {
    with_watchdog(120, || {
        let events = disordered(3_000, 5, 150, 0xD00D);
        let cfg = EngineConfig::new(watermark_query(), 2).unwrap();
        let (want, want_stats) = reference_run(EngineKind::ScaleOij, cfg.clone(), &events);

        for fsync in [FsyncPolicy::Never, FsyncPolicy::EveryBatch] {
            let dir = scratch_dir("clean");
            let durable_cfg = cfg
                .clone()
                .with_durability(DurabilityConfig::new(dir.clone()).with_fsync(fsync));
            let (got, stats) = reference_run(EngineKind::ScaleOij, durable_cfg, &events);
            assert_rows_equal(&sorted(got), &sorted(want.clone()), "durable clean run");
            assert_eq!(stats.input_tuples, want_stats.input_tuples);
            assert_eq!(stats.results, want_stats.results);
            assert!(stats.wal_bytes_written > 0);
            assert_eq!(stats.wal_records_replayed, 0, "nothing to replay");
            assert_eq!(stats.rows_deduped_on_recovery, 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
}

#[test]
fn recover_without_durability_config_is_rejected() {
    let cfg = EngineConfig::new(watermark_query(), 2).unwrap();
    let (sink, _) = Sink::collect();
    match recover(EngineKind::KeyOij, cfg, sink) {
        Err(Error::InvalidConfig(msg)) => assert!(msg.contains("durability")),
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(_) => panic!("recover without durability must be rejected"),
    }
}

#[test]
fn side_output_markers_survive_crash_recovery() {
    with_watchdog(120, || {
        // Scale-OIJ under LatePolicy::SideOutput: late markers carry the
        // odd frontier keys; they must be exactly-once too.
        let events = disordered(3_000, 5, 150, 0x5EED);
        let mut cfg = EngineConfig::new(watermark_query(), 2).unwrap();
        cfg.late_policy = LatePolicy::SideOutput;
        let dir = scratch_dir("sideout");
        crash_cycle(EngineKind::ScaleOij, cfg, &events, 0, 41, &dir);
    });
}

// ---------------------------------------------------------------------------
// SinkRetryPolicy: bounded retry with exponential backoff
// ---------------------------------------------------------------------------

#[test]
fn transient_sink_failure_is_retried_and_the_run_completes() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 1)
            .unwrap()
            .with_sink_retry(SinkRetryPolicy::new(3));
        // Emissions 3 and 4 panic; attempts 2/3 of each retry loop succeed.
        cfg.faults = FaultPlan::none().sink_fail_burst(0, 3, 2);
        let (sink, rows) = Sink::collect();
        let mut engine = KeyOij::spawn(cfg, sink).unwrap();
        for i in 0..64u64 {
            engine
                .push(Event::data(
                    i,
                    Side::Base,
                    Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
                ))
                .unwrap();
        }
        let stats = engine.finish().unwrap();
        assert_eq!(stats.results, 64, "every row must be delivered");
        assert_eq!(rows.lock().len(), 64);
        assert!(
            stats.sink_retries >= 2,
            "retries must be counted, got {}",
            stats.sink_retries
        );
        assert!(!stats.aborted);
    });
}

#[test]
fn permanent_sink_failure_exhausts_retries_and_fails_the_worker() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 1)
            .unwrap()
            .with_sink_retry(SinkRetryPolicy::new(3));
        // A burst longer than the retry budget: attempt 3 still panics.
        cfg.faults = FaultPlan::none().sink_fail_burst(0, 0, 50);
        cfg.send_timeout = StdDuration::from_millis(500);
        let mut engine: Box<dyn OijEngine> = Box::new(KeyOij::spawn(cfg, Sink::null()).unwrap());
        let events: Vec<Event> = (0..64u64)
            .map(|i| {
                Event::data(
                    i,
                    Side::Base,
                    Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
                )
            })
            .collect();
        let mut err = None;
        for ev in &events {
            if let Err(e) = engine.push(ev.clone()) {
                err = Some(e);
                break;
            }
        }
        let err = err.unwrap_or_else(|| {
            engine
                .finish()
                .expect_err("exhausted retries must fail the worker")
        });
        assert!(
            matches!(&err, Error::WorkerFailed { cause, .. } if cause.contains("injected sink failure")),
            "got {err:?}"
        );
    });
}
