//! Temporal-protocol witness suite (DESIGN.md §8, R8/R9).
//!
//! Every joiner carries an always-on [`ProtoProbe`] shadowing its
//! receive side of the driver→joiner edge: it panics — surfacing as a
//! supervised `WorkerFailed` — on a heartbeat regression, on a heartbeat
//! below the watermark of data already delivered, or on any traffic
//! after the edge's terminal `Flush`. The property tests here drive
//! disordered workloads through **all four engines × batch sizes
//! {1, 2, 7, 64}** and require clean completion: a run that finishes
//! `Ok` is a run in which no sink observed a `DataMsg::watermark` above
//! a later `Heartbeat` timestamp on any channel.
//!
//! The direct probe tests prove the witness actually bites (so the
//! clean-completion assertion is not vacuous), and the recovery test
//! extends the property across a crash: replayed tuples go through
//! `prepare_stamped` with their WAL-logged original stamps, and the
//! probes stay armed through replay and resumed live ingest.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use oij::prelude::*;
use oij_core::instrument::ProtoProbe;
use proptest::prelude::*;

/// The batch shapes the acceptance gate requires: pass-through, constant
/// flushing, ragged partials, and the bench default.
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

fn disordered(tuples: usize, keys: u64, disorder_us: i64, seed: u64) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

fn spawn_kind(kind: &str, cfg: EngineConfig, sink: Sink) -> Box<dyn OijEngine> {
    match kind {
        "key-oij" => Box::new(KeyOij::spawn(cfg, sink).unwrap()),
        "scale-oij" => Box::new(ScaleOij::spawn(cfg, sink).unwrap()),
        "splitjoin" => Box::new(SplitJoin::spawn(cfg, sink).unwrap()),
        "openmldb" => Box::new(OpenMldbBaseline::spawn(cfg, sink).unwrap()),
        other => unreachable!("unknown engine {other}"),
    }
}

proptest! {
    // Each case runs 4 engines × 4 batch sizes with real threads.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Heartbeats never undercut delivered data, whatever the batching:
    /// with the per-joiner probes armed, any channel on which a
    /// heartbeat timestamp dropped below an already-observed data
    /// watermark (or ran backwards, or followed the terminal Flush)
    /// panics the joiner and fails the run. Completing `Ok` across the
    /// full engine × batch matrix IS the property. OpenMLDB rejects
    /// watermark mode by contract, so it runs eager — same probes, same
    /// edge discipline.
    #[test]
    fn no_sink_observes_data_above_a_later_heartbeat(
        pre in 1i64..400,
        disorder in 0i64..200,
        keys in 1u64..10,
        joiners in 1usize..4,
        seed in any::<u64>(),
    ) {
        let events = disordered(1_500, keys, disorder, seed);
        for kind in ["key-oij", "scale-oij", "splitjoin", "openmldb"] {
            let emit = if kind == "openmldb" { EmitMode::Eager } else { EmitMode::Watermark };
            let query = OijQuery::builder()
                .preceding(Duration::from_micros(pre))
                .lateness(Duration::from_micros(disorder.max(1)))
                .agg(AggSpec::Sum)
                .emit(emit)
                .build()
                .unwrap();
            for batch in BATCH_SIZES {
                let cfg = EngineConfig::new(query.clone(), joiners)
                    .unwrap()
                    .with_batch_size(batch);
                let (sink, _rows) = Sink::collect();
                let mut engine = spawn_kind(kind, cfg, sink);
                for e in &events {
                    engine.push(e.clone()).unwrap_or_else(|e| {
                        panic!("{kind} batch={batch}: protocol violation surfaced: {e}")
                    });
                }
                engine.finish().unwrap_or_else(|e| {
                    panic!("{kind} batch={batch}: protocol violation at finish: {e}")
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The probe must actually bite, or the property above is vacuous.
// ---------------------------------------------------------------------------

fn probe_panic(f: impl FnOnce() + Send + 'static) -> String {
    let err = std::thread::spawn(f).join().expect_err("must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn probe_rejects_a_heartbeat_regression() {
    let msg = probe_panic(|| {
        let mut p = ProtoProbe::new("driver-joiner");
        p.heartbeat(Timestamp::from_micros(100));
        p.heartbeat(Timestamp::from_micros(99));
    });
    assert!(msg.contains("heartbeat regression"), "{msg}");
}

#[test]
fn probe_rejects_a_heartbeat_below_delivered_data() {
    let msg = probe_panic(|| {
        let mut p = ProtoProbe::new("driver-joiner");
        p.data(Timestamp::from_micros(500));
        p.heartbeat(Timestamp::from_micros(400));
    });
    assert!(msg.contains("below the watermark"), "{msg}");
}

#[test]
fn probe_rejects_traffic_after_the_terminal_flush() {
    let msg = probe_panic(|| {
        let mut p = ProtoProbe::new("driver-joiner");
        p.data(Timestamp::from_micros(1));
        p.finish();
        p.data(Timestamp::from_micros(2));
    });
    assert!(msg.contains("after the edge's terminal Flush"), "{msg}");
}

#[test]
fn probe_accepts_a_monotone_stream() {
    let mut p = ProtoProbe::new("driver-joiner");
    p.data(Timestamp::from_micros(10));
    p.batch(3);
    p.data(Timestamp::from_micros(20));
    p.heartbeat(Timestamp::from_micros(20));
    p.heartbeat(Timestamp::from_micros(20)); // equal is fine: monotone, not strict
    p.data(Timestamp::from_micros(30));
    p.finish();
}

// ---------------------------------------------------------------------------
// The property holds across a crash: stamped replay keeps it monotone.
// ---------------------------------------------------------------------------

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("oij-protowit-{tag}-{}-{n}", std::process::id()))
}

/// Crash mid-run, recover (replaying retained tuples through
/// `prepare_stamped` with their original WAL-logged watermark stamps),
/// resume live ingest, and finish. The probes are armed in both the
/// crashed and the recovered engine: a replay that re-stamped tuples out
/// of order — or a heartbeat computed from a regressed tracker — would
/// panic a joiner and fail this test. Exactly-once row identity rides
/// along as a sanity check.
#[test]
fn stamped_recovery_replay_preserves_the_heartbeat_bound() {
    let events = disordered(3_000, 6, 150, 0xBEEF);
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(120))
        .lateness(Duration::from_micros(200))
        .agg(AggSpec::Sum)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap();
    for kind in [
        EngineKind::KeyOij,
        EngineKind::ScaleOij,
        EngineKind::SplitJoin,
    ] {
        let dir = scratch_dir("replay");
        let durable = DurabilityConfig::new(dir.clone());
        let crash_cfg = {
            let mut c = EngineConfig::new(query.clone(), 2)
                .unwrap()
                .with_batch_size(7)
                .with_durability(durable.clone());
            c.faults = FaultPlan::none().crash_at(0, 113);
            c
        };
        let (sink, pre_rows) = Sink::collect();
        let mut engine = oij::durability::spawn_engine(kind, crash_cfg, sink).unwrap();
        let mut crashed = false;
        for ev in &events {
            if engine.push(ev.clone()).is_err() {
                crashed = true;
                break;
            }
        }
        if !crashed {
            engine.finish().expect_err("crash fault must surface");
        } else {
            let _ = engine.abort();
        }
        drop(engine);

        let mut resume_cfg = EngineConfig::new(query.clone(), 2)
            .unwrap()
            .with_batch_size(7);
        resume_cfg.durability = Some(durable);
        let (sink, post_rows) = Sink::collect();
        let (mut engine, report) = oij::durability::recover(kind, resume_cfg, sink).unwrap();
        assert!(report.replayed > 0, "{kind:?}: recovery must replay");
        let resume_after = report.last_seq.expect("crashed run logged events");
        for ev in events.iter().filter(|e| e.seq > resume_after) {
            engine
                .push(ev.clone())
                .unwrap_or_else(|e| panic!("{kind:?}: protocol violation after recovery: {e}"));
        }
        engine
            .finish()
            .unwrap_or_else(|e| panic!("{kind:?}: protocol violation at finish: {e}"));

        let mut seen = HashSet::new();
        for r in pre_rows.lock().iter().chain(post_rows.lock().iter()) {
            assert!(
                seen.insert((r.seq, r.late)),
                "{kind:?}: duplicate row seq {} late {}",
                r.seq,
                r.late
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
