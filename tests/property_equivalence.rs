//! Property-based integration tests: for arbitrary workload shapes, the
//! parallel engines in exact (watermark) mode must equal the brute-force
//! oracle, and stream generation must respect its disorder contract.
//!
//! The second half is the **differential batching suite** (DESIGN.md
//! §10): for every engine, running with `batch_size ∈ {2, 7, 64}` must be
//! observably identical to the `batch_size = 1` pass-through path — same
//! rows, same `late_violations`/`late_side_outputs` accounting, and (for
//! deterministic single-joiner configurations) the same emission order,
//! watermark mode included.
//!
//! The index backend is a matrix axis throughout: every property draws an
//! `IndexBackend` and must hold on all of them — the oracle tests pin
//! backend-vs-oracle exactness, the batching tests pin that coalescing is
//! invisible *on each backend* (cross-backend bit-identity lives in
//! `tests/index_equivalence.rs`).

use oij::engine::Oracle;
use oij::prelude::*;
use proptest::prelude::*;

fn workload(
    tuples: usize,
    keys: u64,
    disorder_us: i64,
    probe_fraction: f64,
    seed: u64,
) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

proptest! {
    // Each case spawns threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scale-OIJ in watermark mode equals the oracle for arbitrary window,
    /// lateness, key-count, probe-ratio, joiner-count and agg choices.
    #[test]
    fn scale_oij_watermark_equals_oracle(
        pre in 1i64..600,
        disorder in 0i64..300,
        keys in 1u64..12,
        probe_fraction in 0.1f64..0.9,
        joiners in 1usize..5,
        seed in any::<u64>(),
        agg_idx in 0usize..3,
        backend_idx in 0usize..3,
    ) {
        let backend = IndexBackend::ALL[backend_idx];
        let agg = [AggSpec::Sum, AggSpec::Count, AggSpec::Avg][agg_idx];
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(disorder.max(1)))
            .agg(agg)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(4_000, keys, disorder, probe_fraction, seed);
        let mut want = Oracle::new(query.clone()).run(&events);
        want.sort_by_key(|r| r.seq);

        let (sink, rows) = Sink::collect();
        let cfg = EngineConfig::new(query, joiners).unwrap().with_index_backend(backend);
        let mut engine = ScaleOij::spawn(cfg, sink).expect("spawn");
        for e in &events {
            engine.push(e.clone()).expect("push");
        }
        engine.finish().expect("finish");
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);

        prop_assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            prop_assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            prop_assert!(g.agg_approx_eq(o, 1e-9), "seq {}: {:?} vs {:?}", g.seq, g.agg, o.agg);
        }
    }

    /// Key-OIJ in watermark mode equals the oracle under the same space.
    #[test]
    fn key_oij_watermark_equals_oracle(
        pre in 1i64..600,
        disorder in 0i64..300,
        keys in 1u64..12,
        joiners in 1usize..5,
        seed in any::<u64>(),
        backend_idx in 0usize..3,
    ) {
        let backend = IndexBackend::ALL[backend_idx];
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(disorder.max(1)))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(4_000, keys, disorder, 0.5, seed);
        let mut want = Oracle::new(query.clone()).run(&events);
        want.sort_by_key(|r| r.seq);

        let (sink, rows) = Sink::collect();
        let cfg = EngineConfig::new(query, joiners).unwrap().with_index_backend(backend);
        let mut engine = KeyOij::spawn(cfg, sink).expect("spawn");
        for e in &events {
            engine.push(e.clone()).expect("push");
        }
        engine.finish().expect("finish");
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);

        prop_assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            prop_assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            prop_assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    /// Generated streams never violate their own disorder bound: with
    /// lateness = disorder, no engine ever counts a lateness violation.
    #[test]
    fn generator_disorder_respects_lateness_contract(
        disorder in 0i64..500,
        keys in 1u64..20,
        seed in any::<u64>(),
    ) {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(100))
            .lateness(Duration::from_micros(disorder))
            .agg(AggSpec::Sum)
            .build()
            .unwrap();
        let events = workload(3_000, keys, disorder, 0.5, seed);
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(query, 2).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        prop_assert_eq!(stats.late_violations, 0);
    }
}

// ---------------------------------------------------------------------------
// Differential batching suite: batch_size must be invisible in the results
// ---------------------------------------------------------------------------

/// The batch sizes the acceptance gate requires: 1 is the pass-through
/// oracle, 2 exercises constant flushing, 7 leaves ragged partial batches
/// at heartbeats and end-of-input, 64 is the bench default.
const BATCH_SIZES: [usize; 3] = [2, 7, 64];

const ALL_ENGINES: [&str; 4] = ["key-oij", "scale-oij", "splitjoin", "openmldb"];

fn spawn_kind(kind: &str, cfg: EngineConfig, sink: Sink) -> Box<dyn OijEngine> {
    match kind {
        "key-oij" => Box::new(KeyOij::spawn(cfg, sink).unwrap()),
        "scale-oij" => Box::new(ScaleOij::spawn(cfg, sink).unwrap()),
        "splitjoin" => Box::new(SplitJoin::spawn(cfg, sink).unwrap()),
        "openmldb" => Box::new(OpenMldbBaseline::spawn(cfg, sink).unwrap()),
        other => unreachable!("unknown engine {other}"),
    }
}

/// Runs `kind` over `events` with the given batch size and index backend
/// and returns the rows **in emission order** plus the run stats.
fn run_with_batch(
    kind: &str,
    query: &OijQuery,
    joiners: usize,
    batch: usize,
    backend: IndexBackend,
    late_policy: LatePolicy,
    events: &[Event],
) -> (Vec<FeatureRow>, RunStats) {
    let mut cfg = EngineConfig::new(query.clone(), joiners)
        .unwrap()
        .with_batch_size(batch)
        .with_index_backend(backend);
    cfg.late_policy = late_policy;
    let (sink, rows) = Sink::collect();
    let mut engine = spawn_kind(kind, cfg, sink);
    for e in events {
        engine.push(e.clone()).expect("push");
    }
    let stats = engine.finish().expect("finish");
    let got = rows.lock().clone();
    (got, stats)
}

proptest! {
    // Each case runs 4 engines × 4 batch sizes; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single joiner, eager mode: every engine is fully deterministic, so
    /// every batch size must reproduce the `batch_size = 1` run
    /// **bit-identically** — same rows in the same emission order (late
    /// markers included) and the same lateness accounting. Lateness is
    /// drawn independently of disorder so some runs genuinely violate the
    /// contract and exercise the mid-batch late checks.
    #[test]
    fn batching_is_invisible_on_deterministic_configs(
        pre in 1i64..400,
        disorder in 0i64..200,
        lateness in 0i64..200,
        keys in 1u64..10,
        probe_fraction in 0.1f64..0.9,
        side_output in any::<bool>(),
        seed in any::<u64>(),
        backend_idx in 0usize..3,
    ) {
        let backend = IndexBackend::ALL[backend_idx];
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(lateness))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Eager)
            .build()
            .unwrap();
        let policy = if side_output { LatePolicy::SideOutput } else { LatePolicy::Drop };
        let events = workload(2_000, keys, disorder, probe_fraction, seed);
        for kind in ALL_ENGINES {
            let (want_rows, want_stats) =
                run_with_batch(kind, &query, 1, 1, backend, policy, &events);
            prop_assert_eq!(
                want_stats.batch_occupancy.batches(), 0,
                "{}: pass-through mode must not record batches", kind
            );
            for batch in BATCH_SIZES {
                let (got_rows, got_stats) =
                    run_with_batch(kind, &query, 1, batch, backend, policy, &events);
                // Bit-identical, order included: FeatureRow's PartialEq
                // compares the aggregate as raw f64 equality.
                prop_assert_eq!(
                    &got_rows, &want_rows,
                    "{} batch={}: rows diverge from the unbatched oracle", kind, batch
                );
                prop_assert_eq!(
                    got_stats.late_violations, want_stats.late_violations,
                    "{} batch={}", kind, batch
                );
                prop_assert_eq!(
                    got_stats.late_side_outputs, want_stats.late_side_outputs,
                    "{} batch={}", kind, batch
                );
                prop_assert_eq!(got_stats.results, want_stats.results, "{} batch={}", kind, batch);
                prop_assert_eq!(
                    got_stats.input_tuples, want_stats.input_tuples,
                    "{} batch={}", kind, batch
                );
                // The occupancy histogram proves batches actually flowed
                // (conservation: every tuple arrived inside some batch).
                prop_assert_eq!(
                    got_stats.batch_occupancy.tuples(), events.len() as u64,
                    "{} batch={}", kind, batch
                );
                prop_assert!(
                    got_stats.batch_occupancy.max() <= batch as u64,
                    "{} batch={}: a batch exceeded the configured size", kind, batch
                );
            }
        }
    }

    /// Single joiner, watermark mode: drains happen at heartbeats, so the
    /// emission order itself is deterministic and must survive batching
    /// unchanged (flush-before-heartbeat keeps coalesced tuples ahead of
    /// the watermark that would drain them). OpenMLDB is excluded: it
    /// rejects watermark mode by contract.
    #[test]
    fn watermark_emission_order_survives_batching(
        pre in 1i64..400,
        disorder in 0i64..150,
        keys in 1u64..10,
        seed in any::<u64>(),
        backend_idx in 0usize..3,
    ) {
        let backend = IndexBackend::ALL[backend_idx];
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(disorder.max(1)))
            .agg(AggSpec::Avg)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(2_000, keys, disorder, 0.5, seed);
        for kind in ["key-oij", "scale-oij", "splitjoin"] {
            let (want_rows, _) =
                run_with_batch(kind, &query, 1, 1, backend, LatePolicy::Drop, &events);
            for batch in BATCH_SIZES {
                let (got_rows, _) =
                    run_with_batch(kind, &query, 1, batch, backend, LatePolicy::Drop, &events);
                prop_assert_eq!(
                    &got_rows, &want_rows,
                    "{} batch={}: watermark emission order diverged", kind, batch
                );
            }
        }
    }

    /// Multiple joiners: sink interleaving across worker threads is
    /// scheduling-dependent, so rows are compared sorted by base sequence.
    /// Key-OIJ stays bit-identical (disjoint per-key state, deterministic
    /// routing); SplitJoin and Scale-OIJ may re-associate floating-point
    /// partial merges, so aggregates compare within 1e-9. OpenMLDB's
    /// shared-store baseline is racy between workers even unbatched and
    /// is covered by the single-joiner case above.
    #[test]
    fn multi_joiner_batching_matches_unbatched(
        pre in 1i64..400,
        disorder in 0i64..150,
        keys in 1u64..10,
        joiners in 2usize..5,
        seed in any::<u64>(),
        backend_idx in 0usize..3,
    ) {
        let backend = IndexBackend::ALL[backend_idx];
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(disorder.max(1)))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(2_000, keys, disorder, 0.5, seed);
        for kind in ["key-oij", "scale-oij", "splitjoin"] {
            let (mut want_rows, want_stats) =
                run_with_batch(kind, &query, joiners, 1, backend, LatePolicy::Drop, &events);
            want_rows.sort_by_key(|r| r.seq);
            for batch in BATCH_SIZES {
                let (mut got_rows, got_stats) =
                    run_with_batch(kind, &query, joiners, batch, backend, LatePolicy::Drop, &events);
                got_rows.sort_by_key(|r| r.seq);
                prop_assert_eq!(got_rows.len(), want_rows.len(), "{} batch={}", kind, batch);
                for (g, o) in got_rows.iter().zip(&want_rows) {
                    prop_assert_eq!(g.seq, o.seq, "{} batch={}", kind, batch);
                    prop_assert_eq!(
                        g.matched, o.matched,
                        "{} batch={} seq {}", kind, batch, g.seq
                    );
                    if kind == "key-oij" {
                        prop_assert_eq!(
                            g.agg, o.agg,
                            "{} batch={} seq {}: per-key state is disjoint, \
                             aggregates must be bit-identical", kind, batch, g.seq
                        );
                    } else {
                        prop_assert!(
                            g.agg_approx_eq(o, 1e-9),
                            "{} batch={} seq {}: {:?} vs {:?}", kind, batch, g.seq, g.agg, o.agg
                        );
                    }
                }
                prop_assert_eq!(
                    got_stats.late_violations, want_stats.late_violations,
                    "{} batch={}", kind, batch
                );
                prop_assert_eq!(
                    got_stats.input_tuples, want_stats.input_tuples,
                    "{} batch={}", kind, batch
                );
            }
        }
    }
}
