//! Property-based integration tests: for arbitrary workload shapes, the
//! parallel engines in exact (watermark) mode must equal the brute-force
//! oracle, and stream generation must respect its disorder contract.

use oij::engine::Oracle;
use oij::prelude::*;
use proptest::prelude::*;

fn workload(
    tuples: usize,
    keys: u64,
    disorder_us: i64,
    probe_fraction: f64,
    seed: u64,
) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

proptest! {
    // Each case spawns threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scale-OIJ in watermark mode equals the oracle for arbitrary window,
    /// lateness, key-count, probe-ratio, joiner-count and agg choices.
    #[test]
    fn scale_oij_watermark_equals_oracle(
        pre in 1i64..600,
        disorder in 0i64..300,
        keys in 1u64..12,
        probe_fraction in 0.1f64..0.9,
        joiners in 1usize..5,
        seed in any::<u64>(),
        agg_idx in 0usize..3,
    ) {
        let agg = [AggSpec::Sum, AggSpec::Count, AggSpec::Avg][agg_idx];
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(disorder.max(1)))
            .agg(agg)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(4_000, keys, disorder, probe_fraction, seed);
        let mut want = Oracle::new(query.clone()).run(&events);
        want.sort_by_key(|r| r.seq);

        let (sink, rows) = Sink::collect();
        let mut engine = ScaleOij::spawn(EngineConfig::new(query, joiners).unwrap(), sink)
            .expect("spawn");
        for e in &events {
            engine.push(e.clone()).expect("push");
        }
        engine.finish().expect("finish");
        let mut got = rows.lock().unwrap().clone();
        got.sort_by_key(|r| r.seq);

        prop_assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            prop_assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            prop_assert!(g.agg_approx_eq(o, 1e-9), "seq {}: {:?} vs {:?}", g.seq, g.agg, o.agg);
        }
    }

    /// Key-OIJ in watermark mode equals the oracle under the same space.
    #[test]
    fn key_oij_watermark_equals_oracle(
        pre in 1i64..600,
        disorder in 0i64..300,
        keys in 1u64..12,
        joiners in 1usize..5,
        seed in any::<u64>(),
    ) {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(disorder.max(1)))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(4_000, keys, disorder, 0.5, seed);
        let mut want = Oracle::new(query.clone()).run(&events);
        want.sort_by_key(|r| r.seq);

        let (sink, rows) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(query, joiners).unwrap(), sink)
            .expect("spawn");
        for e in &events {
            engine.push(e.clone()).expect("push");
        }
        engine.finish().expect("finish");
        let mut got = rows.lock().unwrap().clone();
        got.sort_by_key(|r| r.seq);

        prop_assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            prop_assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            prop_assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    /// Generated streams never violate their own disorder bound: with
    /// lateness = disorder, no engine ever counts a lateness violation.
    #[test]
    fn generator_disorder_respects_lateness_contract(
        disorder in 0i64..500,
        keys in 1u64..20,
        seed in any::<u64>(),
    ) {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(100))
            .lateness(Duration::from_micros(disorder))
            .agg(AggSpec::Sum)
            .build()
            .unwrap();
        let events = workload(3_000, keys, disorder, 0.5, seed);
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(query, 2).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        prop_assert_eq!(stats.late_violations, 0);
    }
}
