//! Robustness and lifecycle tests: aggressive expiration + scheduling
//! churn under disorder, drop-without-finish, and misuse of the API.

use oij::engine::Oracle;
use oij::prelude::*;

fn workload(tuples: usize, keys: u64, disorder_us: i64, seed: u64) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

#[test]
fn scale_oij_survives_aggressive_everything() {
    // Expiration every message, heartbeats every 16 pushes, 1ms schedule
    // churn, Zipf keys, disorder — and still exact in watermark mode.
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(150))
        .lateness(Duration::from_micros(200))
        .agg(AggSpec::Sum)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap();
    let events = {
        let mut cfg = SyntheticConfig {
            tuples: 30_000,
            unique_keys: 5,
            key_dist: KeyDist::Zipf { exponent: 1.0 },
            probe_fraction: 0.5,
            spacing: Duration::from_micros(1),
            disorder: Duration::from_micros(200),
            payload_bytes: 8,
            seed: 0xDEAD,
        };
        cfg.key_dist = KeyDist::Zipf { exponent: 1.0 };
        cfg.generate()
    };
    let mut want = Oracle::new(query.clone()).run(&events);
    want.sort_by_key(|r| r.seq);

    let mut cfg = EngineConfig::new(query, 4).unwrap();
    cfg.expire_every = 1;
    cfg.heartbeat_every = 16;
    cfg.schedule_interval = std::time::Duration::from_millis(1);
    cfg.channel_capacity = 64;

    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
    for e in &events {
        engine.push(e.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();
    assert!(stats.evicted > 0, "expiration must have run");

    let mut got = rows.lock().unwrap().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got.len(), want.len());
    for (g, o) in got.iter().zip(&want) {
        assert_eq!(g.matched, o.matched, "seq {}", g.seq);
        assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
    }
}

#[test]
fn engines_drop_cleanly_without_finish() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(100))
        .build()
        .unwrap();
    let events = workload(2_000, 4, 0, 5);

    // Each engine is dropped mid-stream; worker threads must not hang.
    let cfg = EngineConfig::new(query.clone(), 3).unwrap();
    {
        let mut e = KeyOij::spawn(cfg.clone(), Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    {
        let mut e = ScaleOij::spawn(cfg.clone(), Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    {
        let mut e = SplitJoin::spawn(cfg.clone(), Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    {
        let mut e = OpenMldbBaseline::spawn(cfg, Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    // reaching here without deadlock is the assertion
}

#[test]
fn flush_event_mid_stream_stops_input() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(100))
        .build()
        .unwrap();
    let (sink, _) = Sink::collect();
    let mut e = KeyOij::spawn(EngineConfig::new(query, 1).unwrap(), sink).unwrap();
    e.push(Event::data(
        0,
        Side::Base,
        Tuple::new(Timestamp::from_micros(1), 1, 1.0),
    ))
    .unwrap();
    e.push(Event::flush(1)).unwrap();
    let stats = e.finish().unwrap();
    assert_eq!(stats.input_tuples, 1); // the flush marker is not data
}

#[test]
fn tiny_channels_backpressure_without_deadlock() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(50))
        .build()
        .unwrap();
    let mut cfg = EngineConfig::new(query, 2).unwrap();
    cfg.channel_capacity = 1;
    let events = workload(5_000, 4, 0, 8);
    let (sink, _) = Sink::collect();
    let mut e = SplitJoin::spawn(cfg, sink).unwrap();
    for ev in &events {
        e.push(ev.clone()).unwrap();
    }
    let stats = e.finish().unwrap();
    assert_eq!(stats.input_tuples, events.len() as u64);
}

#[test]
fn single_key_single_partition_extreme() {
    // The most extreme skew: one key. The dynamic schedule should grow the
    // team; watermark mode must stay exact.
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(200))
        .lateness(Duration::from_micros(50))
        .agg(AggSpec::Avg)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap();
    let events = workload(20_000, 1, 50, 21);
    let mut want = Oracle::new(query.clone()).run(&events);
    want.sort_by_key(|r| r.seq);

    let mut cfg = EngineConfig::new(query, 4).unwrap();
    cfg.schedule_interval = std::time::Duration::from_millis(1);
    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
    for e in &events {
        engine.push(e.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();
    let mut got = rows.lock().unwrap().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got.len(), want.len());
    for (g, o) in got.iter().zip(&want) {
        assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
    }
    // With one key the schedule should have replicated it across joiners.
    let active = stats.joiner_loads.iter().filter(|&&l| l > 0).count();
    assert!(active >= 2, "loads: {:?}", stats.joiner_loads);
}

#[test]
fn empty_and_degenerate_streams() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(10))
        .build()
        .unwrap();
    // No input at all.
    let (sink, rows) = Sink::collect();
    let mut e = ScaleOij::spawn(EngineConfig::new(query.clone(), 2).unwrap(), sink).unwrap();
    let stats = e.finish().unwrap();
    assert_eq!(stats.input_tuples, 0);
    assert_eq!(stats.results, 0);
    assert!(rows.lock().unwrap().is_empty());

    // Probe-only stream: zero results.
    let (sink, _) = Sink::collect();
    let mut e = ScaleOij::spawn(EngineConfig::new(query.clone(), 2).unwrap(), sink).unwrap();
    for i in 0..100u64 {
        e.push(Event::data(
            i,
            Side::Probe,
            Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
        ))
        .unwrap();
    }
    assert_eq!(e.finish().unwrap().results, 0);

    // Base-only stream: every window is empty but rows still emit.
    let (sink, rows) = Sink::collect();
    let mut e = ScaleOij::spawn(EngineConfig::new(query, 2).unwrap(), sink).unwrap();
    for i in 0..100u64 {
        e.push(Event::data(
            i,
            Side::Base,
            Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
        ))
        .unwrap();
    }
    assert_eq!(e.finish().unwrap().results, 100);
    assert!(rows.lock().unwrap().iter().all(|r| r.agg == Some(0.0)));
}
