//! Robustness and lifecycle tests: aggressive expiration + scheduling
//! churn under disorder, drop-without-finish, and misuse of the API.

use oij::engine::Oracle;
use oij::prelude::*;

fn workload(tuples: usize, keys: u64, disorder_us: i64, seed: u64) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

#[test]
fn scale_oij_survives_aggressive_everything() {
    // Expiration every message, heartbeats every 16 pushes, 1ms schedule
    // churn, Zipf keys, disorder — and still exact in watermark mode.
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(150))
        .lateness(Duration::from_micros(200))
        .agg(AggSpec::Sum)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap();
    let events = {
        let mut cfg = SyntheticConfig {
            tuples: 30_000,
            unique_keys: 5,
            key_dist: KeyDist::Zipf { exponent: 1.0 },
            probe_fraction: 0.5,
            spacing: Duration::from_micros(1),
            disorder: Duration::from_micros(200),
            payload_bytes: 8,
            seed: 0xDEAD,
        };
        cfg.key_dist = KeyDist::Zipf { exponent: 1.0 };
        cfg.generate()
    };
    let mut want = Oracle::new(query.clone()).run(&events);
    want.sort_by_key(|r| r.seq);

    let mut cfg = EngineConfig::new(query, 4).unwrap();
    cfg.expire_every = 1;
    cfg.heartbeat_every = 16;
    cfg.schedule_interval = std::time::Duration::from_millis(1);
    cfg.channel_capacity = 64;

    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
    for e in &events {
        engine.push(e.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();
    assert!(stats.evicted > 0, "expiration must have run");

    let mut got = rows.lock().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got.len(), want.len());
    for (g, o) in got.iter().zip(&want) {
        assert_eq!(g.matched, o.matched, "seq {}", g.seq);
        assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
    }
}

#[test]
fn engines_drop_cleanly_without_finish() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(100))
        .build()
        .unwrap();
    let events = workload(2_000, 4, 0, 5);

    // Each engine is dropped mid-stream; worker threads must not hang.
    let cfg = EngineConfig::new(query.clone(), 3).unwrap();
    {
        let mut e = KeyOij::spawn(cfg.clone(), Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    {
        let mut e = ScaleOij::spawn(cfg.clone(), Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    {
        let mut e = SplitJoin::spawn(cfg.clone(), Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    {
        let mut e = OpenMldbBaseline::spawn(cfg, Sink::null()).unwrap();
        for ev in &events[..500] {
            e.push(ev.clone()).unwrap();
        }
    }
    // reaching here without deadlock is the assertion
}

#[test]
fn flush_event_mid_stream_stops_input() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(100))
        .build()
        .unwrap();
    let (sink, _) = Sink::collect();
    let mut e = KeyOij::spawn(EngineConfig::new(query, 1).unwrap(), sink).unwrap();
    e.push(Event::data(
        0,
        Side::Base,
        Tuple::new(Timestamp::from_micros(1), 1, 1.0),
    ))
    .unwrap();
    e.push(Event::flush(1)).unwrap();
    let stats = e.finish().unwrap();
    assert_eq!(stats.input_tuples, 1); // the flush marker is not data
}

#[test]
fn tiny_channels_backpressure_without_deadlock() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(50))
        .build()
        .unwrap();
    let mut cfg = EngineConfig::new(query, 2).unwrap();
    cfg.channel_capacity = 1;
    let events = workload(5_000, 4, 0, 8);
    let (sink, _) = Sink::collect();
    let mut e = SplitJoin::spawn(cfg, sink).unwrap();
    for ev in &events {
        e.push(ev.clone()).unwrap();
    }
    let stats = e.finish().unwrap();
    assert_eq!(stats.input_tuples, events.len() as u64);
}

#[test]
fn single_key_single_partition_extreme() {
    // The most extreme skew: one key. The dynamic schedule should grow the
    // team; watermark mode must stay exact.
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(200))
        .lateness(Duration::from_micros(50))
        .agg(AggSpec::Avg)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap();
    let events = workload(20_000, 1, 50, 21);
    let mut want = Oracle::new(query.clone()).run(&events);
    want.sort_by_key(|r| r.seq);

    let mut cfg = EngineConfig::new(query, 4).unwrap();
    cfg.schedule_interval = std::time::Duration::from_millis(1);
    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
    for e in &events {
        engine.push(e.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();
    let mut got = rows.lock().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got.len(), want.len());
    for (g, o) in got.iter().zip(&want) {
        assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
    }
    // With one key the schedule should have replicated it across joiners.
    let active = stats.joiner_loads.iter().filter(|&&l| l > 0).count();
    assert!(active >= 2, "loads: {:?}", stats.joiner_loads);
}

#[test]
fn empty_and_degenerate_streams() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(10))
        .build()
        .unwrap();
    // No input at all.
    let (sink, rows) = Sink::collect();
    let mut e = ScaleOij::spawn(EngineConfig::new(query.clone(), 2).unwrap(), sink).unwrap();
    let stats = e.finish().unwrap();
    assert_eq!(stats.input_tuples, 0);
    assert_eq!(stats.results, 0);
    assert!(rows.lock().is_empty());

    // Probe-only stream: zero results.
    let (sink, _) = Sink::collect();
    let mut e = ScaleOij::spawn(EngineConfig::new(query.clone(), 2).unwrap(), sink).unwrap();
    for i in 0..100u64 {
        e.push(Event::data(
            i,
            Side::Probe,
            Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
        ))
        .unwrap();
    }
    assert_eq!(e.finish().unwrap().results, 0);

    // Base-only stream: every window is empty but rows still emit.
    let (sink, rows) = Sink::collect();
    let mut e = ScaleOij::spawn(EngineConfig::new(query, 2).unwrap(), sink).unwrap();
    for i in 0..100u64 {
        e.push(Event::data(
            i,
            Side::Base,
            Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
        ))
        .unwrap();
    }
    assert_eq!(e.finish().unwrap().results, 100);
    assert!(rows.lock().iter().all(|r| r.agg == Some(0.0)));
}

// ---------------------------------------------------------------------------
// Fault matrix: injected worker failures across all four engines
// ---------------------------------------------------------------------------

use oij::engine::SCHEDULER;
use oij::Error;
use std::time::Duration as StdDuration;

const ENGINES: [&str; 4] = ["key-oij", "scale-oij", "splitjoin", "openmldb"];

/// Runs the test body under a watchdog thread: a hang (the exact failure
/// mode this PR's supervision exists to prevent) turns into a loud panic
/// instead of a stuck CI job.
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(StdDuration::from_secs(secs)) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            t.join().expect("test body panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: test exceeded {secs}s — supervision failed to prevent a hang")
        }
    }
}

fn spawn_engine(kind: &str, cfg: EngineConfig, sink: Sink) -> Box<dyn OijEngine> {
    match kind {
        "key-oij" => Box::new(KeyOij::spawn(cfg, sink).unwrap()),
        "scale-oij" => Box::new(ScaleOij::spawn(cfg, sink).unwrap()),
        "splitjoin" => Box::new(SplitJoin::spawn(cfg, sink).unwrap()),
        "openmldb" => Box::new(OpenMldbBaseline::spawn(cfg, sink).unwrap()),
        other => unreachable!("unknown engine {other}"),
    }
}

/// Pushes events until the first error, falling back to `finish` — an
/// injected failure must surface through one of the two within the send
/// deadline. Returns the error and the still-poisoned engine.
fn drive_to_error(engine: &mut Box<dyn OijEngine>, events: &[Event]) -> Error {
    for ev in events {
        if let Err(e) = engine.push(ev.clone()) {
            return e;
        }
    }
    engine
        .finish()
        .expect_err("injected fault must surface from push or finish")
}

#[test]
fn injected_panic_surfaces_structured_error_in_every_engine() {
    with_watchdog(90, || {
        for kind in ENGINES {
            let query = OijQuery::builder()
                .preceding(Duration::from_micros(50))
                .build()
                .unwrap();
            let mut cfg = EngineConfig::new(query, 2).unwrap();
            cfg.faults = FaultPlan::none().panic_at(0, 0, "injected worker panic");
            cfg.send_timeout = StdDuration::from_millis(500);
            cfg.channel_capacity = 8;
            let events = workload(4_000, 16, 0, 3);
            let mut engine = spawn_engine(kind, cfg, Sink::null());
            let err = drive_to_error(&mut engine, &events);
            match &err {
                Error::WorkerFailed {
                    engine: label,
                    worker,
                    cause,
                } => {
                    assert_eq!(*label, kind, "engine label");
                    assert_eq!(*worker, 0, "{kind}: worker identity");
                    assert_eq!(cause, "injected worker panic", "{kind}: payload");
                }
                other => panic!("{kind}: expected WorkerFailed, got {other:?}"),
            }
            // The engine is poisoned: subsequent pushes fail fast with the
            // original cause instead of blocking on dead channels.
            let again = engine
                .push(events[0].clone())
                .expect_err("poisoned engine must reject pushes");
            assert!(
                matches!(again, Error::WorkerFailed { worker: 0, .. }),
                "{kind}: poisoned push must carry the original failure, got {again:?}"
            );
            // Drop after a mid-run panic must terminate without hanging
            // (implicitly verified by the watchdog).
            drop(engine);
        }
    });
}

#[test]
fn wedged_joiner_classifies_as_stall_and_drop_releases_it() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 2).unwrap();
        // Worker 0 wedges on its first message: alive, never receiving.
        cfg.faults = FaultPlan::none().wedge_at(0, 0);
        cfg.send_timeout = StdDuration::from_millis(200);
        cfg.channel_capacity = 2;
        let events = workload(2_000, 16, 0, 7);
        let mut engine = KeyOij::spawn(cfg, Sink::null()).unwrap();
        let mut first = None;
        for ev in &events {
            let t0 = std::time::Instant::now();
            match engine.push(ev.clone()) {
                Ok(()) => {}
                Err(e) => {
                    first = Some((e, t0.elapsed()));
                    break;
                }
            }
        }
        let (err, waited) = first.expect("a wedged worker must stall the push path");
        // No panic was recorded, so the timeout classifies as a stall —
        // with the worker identity — not as a failure.
        assert!(
            matches!(err, Error::WorkerStalled { worker: 0, .. }),
            "got {err:?}"
        );
        assert!(
            waited < StdDuration::from_secs(2),
            "push must return within the send deadline, took {waited:?}"
        );
        // Drop must raise the kill flag, releasing the wedge (watchdog
        // catches the hang otherwise).
        drop(engine);
    });
}

#[test]
fn slow_sink_backpressure_bounds_push() {
    with_watchdog(60, || {
        // Every emission stalls 1s: in eager mode the joiner falls behind
        // immediately, the bounded channel fills, and push must surface a
        // stall within the send deadline instead of blocking indefinitely.
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 1).unwrap();
        cfg.faults = FaultPlan::none().sink_stall_from(0, 0, StdDuration::from_secs(1));
        cfg.send_timeout = StdDuration::from_millis(200);
        cfg.channel_capacity = 2;
        let mut engine = KeyOij::spawn(cfg, Sink::null()).unwrap();
        let mut stalled = None;
        for i in 0..64u64 {
            let t0 = std::time::Instant::now();
            match engine.push(Event::data(
                i,
                Side::Base,
                Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
            )) {
                Ok(()) => {}
                Err(e) => {
                    stalled = Some((e, t0.elapsed()));
                    break;
                }
            }
        }
        let (err, waited) = stalled.expect("a saturated sink must backpressure into a stall");
        assert!(
            matches!(err, Error::WorkerStalled { worker: 0, .. }),
            "got {err:?}"
        );
        assert!(
            waited < StdDuration::from_secs(2),
            "push must be bounded by the send deadline, took {waited:?}"
        );
        // Drop interrupts the injected sink sleep via the kill flag.
        drop(engine);
    });
}

#[test]
fn erroring_sink_escalates_to_worker_failure() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 1).unwrap();
        cfg.faults = FaultPlan::none().sink_fail_at(0, 0);
        cfg.send_timeout = StdDuration::from_millis(500);
        let mut engine: Box<dyn OijEngine> = Box::new(KeyOij::spawn(cfg, Sink::null()).unwrap());
        let events: Vec<Event> = (0..64u64)
            .map(|i| {
                Event::data(
                    i,
                    Side::Base,
                    Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
                )
            })
            .collect();
        let err = drive_to_error(&mut engine, &events);
        match err {
            Error::WorkerFailed {
                worker: 0, cause, ..
            } => {
                assert!(
                    cause.contains("injected sink failure"),
                    "payload must identify the sink fault: {cause}"
                );
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    });
}

#[test]
fn benign_stall_slows_but_completes_the_run() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 2).unwrap();
        // 1ms per message on worker 0: within the send deadline, so the
        // run degrades gracefully to slower instead of failing.
        cfg.faults = FaultPlan::none().stall_from(0, 0, StdDuration::from_millis(1));
        let events = workload(400, 8, 0, 11);
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(cfg, sink).unwrap();
        for ev in &events {
            engine.push(ev.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert_eq!(stats.input_tuples, events.len() as u64);
        assert!(!stats.aborted);
    });
}

#[test]
fn scheduler_panic_surfaces_with_scheduler_identity() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 2).unwrap();
        cfg.schedule_interval = StdDuration::from_millis(1);
        cfg.faults = FaultPlan::none().panic_at(SCHEDULER, 0, "scheduler boom");
        let events = workload(2_000, 8, 0, 13);
        let mut engine = ScaleOij::spawn(cfg, Sink::null()).unwrap();
        for ev in &events {
            // Joiners are healthy; pushes keep succeeding even though the
            // scheduler died in the background.
            engine.push(ev.clone()).unwrap();
        }
        // Let the scheduler reach its first tick (the injected fault fires
        // there) before finishing — finish stops the scheduler loop.
        std::thread::sleep(StdDuration::from_millis(50));
        let err = engine
            .finish()
            .expect_err("a dead scheduler must fail the run at finish");
        match err {
            Error::WorkerFailed { engine, cause, .. } => {
                assert_eq!(engine, "scale-oij-scheduler");
                assert_eq!(cause, "scheduler boom");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    });
}

#[test]
fn abort_mid_run_yields_partial_stats_in_every_engine() {
    with_watchdog(90, || {
        for kind in ENGINES {
            let query = OijQuery::builder()
                .preceding(Duration::from_micros(50))
                .build()
                .unwrap();
            let cfg = EngineConfig::new(query, 2).unwrap();
            let events = workload(2_000, 8, 0, 17);
            let mut engine = spawn_engine(kind, cfg, Sink::null());
            for ev in &events[..1_000] {
                engine.push(ev.clone()).unwrap();
            }
            let stats = engine.abort().expect("abort on a healthy engine");
            assert!(stats.aborted, "{kind}");
            assert_eq!(stats.workers_lost, 0, "{kind}: all workers salvageable");
            assert_eq!(stats.input_tuples, 1_000, "{kind}");
        }
    });
}

#[test]
fn abort_after_panic_reports_lost_workers() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        let mut cfg = EngineConfig::new(query, 2).unwrap();
        cfg.faults = FaultPlan::none().panic_at(0, 0, "boom");
        cfg.send_timeout = StdDuration::from_millis(500);
        let events = workload(4_000, 16, 0, 19);
        let mut engine: Box<dyn OijEngine> = Box::new(KeyOij::spawn(cfg, Sink::null()).unwrap());
        let err = drive_to_error(&mut engine, &events);
        assert!(matches!(err, Error::WorkerFailed { .. }), "got {err:?}");
        // The degraded exit: salvage the survivor's partial stats.
        let stats = engine
            .abort()
            .expect("abort must succeed on a poisoned engine");
        assert!(stats.aborted);
        assert_eq!(stats.workers_lost, 1, "one of two workers panicked");
    });
}

// ---------------------------------------------------------------------------
// Batched routing under faults (DESIGN.md §10): fault ordinals address
// individual data messages, so injection points landing mid-batch must
// behave exactly like the unbatched path.
// ---------------------------------------------------------------------------

#[test]
fn mid_batch_panic_surfaces_structured_error_in_every_engine() {
    with_watchdog(120, || {
        for kind in ENGINES {
            let query = OijQuery::builder()
                .preceding(Duration::from_micros(50))
                .build()
                .unwrap();
            // batch_size 8 with the panic at data-message ordinal 13: the
            // fault fires on the 6th message of the victim's second batch,
            // never on a batch boundary.
            let mut cfg = EngineConfig::new(query, 2).unwrap().with_batch_size(8);
            cfg.faults = FaultPlan::none().panic_at(0, 13, "mid-batch panic");
            cfg.send_timeout = StdDuration::from_millis(500);
            cfg.channel_capacity = 8;
            let events = workload(6_000, 16, 0, 29);
            let mut engine = spawn_engine(kind, cfg, Sink::null());
            let err = drive_to_error(&mut engine, &events);
            match &err {
                Error::WorkerFailed { worker, cause, .. } => {
                    assert_eq!(*worker, 0, "{kind}: worker identity");
                    assert_eq!(cause, "mid-batch panic", "{kind}: payload");
                }
                other => panic!("{kind}: expected WorkerFailed, got {other:?}"),
            }
            // Bounded teardown with correct loss accounting: the abort path
            // salvages the survivor and reports exactly one lost worker.
            let stats = engine
                .abort()
                .expect("abort must succeed after a mid-batch panic");
            assert!(stats.aborted, "{kind}");
            assert_eq!(stats.workers_lost, 1, "{kind}: one of two workers died");
        }
    });
}

#[test]
fn mid_batch_wedge_classifies_as_stall() {
    with_watchdog(60, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(50))
            .build()
            .unwrap();
        // Worker 0 wedges on data-message ordinal 13 — mid-batch, since
        // batches carry 8. The driver keeps coalescing toward the wedged
        // worker until its channel fills, then push must classify the
        // timeout as a stall with the worker identity, exactly as on the
        // unbatched path.
        let mut cfg = EngineConfig::new(query, 2).unwrap().with_batch_size(8);
        cfg.faults = FaultPlan::none().wedge_at(0, 13);
        cfg.send_timeout = StdDuration::from_millis(200);
        cfg.channel_capacity = 2;
        let events = workload(6_000, 16, 0, 31);
        let mut engine = KeyOij::spawn(cfg, Sink::null()).unwrap();
        let mut first = None;
        for ev in &events {
            let t0 = std::time::Instant::now();
            match engine.push(ev.clone()) {
                Ok(()) => {}
                Err(e) => {
                    first = Some((e, t0.elapsed()));
                    break;
                }
            }
        }
        let (err, waited) = first.expect("a wedged worker must stall the push path");
        assert!(
            matches!(err, Error::WorkerStalled { worker: 0, .. }),
            "got {err:?}"
        );
        assert!(
            waited < StdDuration::from_secs(2),
            "push must return within the send deadline, took {waited:?}"
        );
        drop(engine); // kill flag releases the wedge; watchdog checks it
    });
}

#[test]
fn flush_deadline_drains_trickle_input_before_finish() {
    with_watchdog(60, || {
        // A slow producer must never see its tuples parked indefinitely in
        // a partial batch: the flush deadline (armed on the first tuple,
        // checked against each later arrival) hands the buffer over even
        // though it never reaches batch_size. Assert rows emit *before*
        // finish() — end-of-input flushing alone would also produce them,
        // but only afterwards.
        for kind in ENGINES {
            let query = OijQuery::builder()
                .preceding(Duration::from_micros(50))
                .build()
                .unwrap();
            let mut cfg = EngineConfig::new(query, 1).unwrap().with_batch_size(64);
            cfg.flush_deadline = StdDuration::from_millis(1);
            // Keep driver heartbeats out of the way so the deadline is the
            // only thing that can flush a partial batch.
            cfg.heartbeat_every = 100_000;
            let (sink, rows) = Sink::collect();
            let mut engine = spawn_engine(kind, cfg, sink);
            for i in 0..10u64 {
                engine
                    .push(Event::data(
                        i,
                        Side::Base,
                        Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
                    ))
                    .unwrap();
                std::thread::sleep(StdDuration::from_millis(3));
            }
            // Every push after the first arrived past the deadline, so at
            // least the first nine tuples must have been flushed, joined,
            // and emitted by now — without any finish() involvement.
            let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
            loop {
                let emitted = rows.lock().len();
                if emitted >= 9 {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "{kind}: only {emitted}/9 rows before finish — trickle \
                     input stalled behind a partial batch"
                );
                std::thread::sleep(StdDuration::from_millis(5));
            }
            let stats = engine.finish().unwrap();
            assert_eq!(stats.input_tuples, 10, "{kind}");
            assert_eq!(rows.lock().len(), 10, "{kind}");
        }
    });
}

// ---------------------------------------------------------------------------
// LatePolicy: configurable handling of lateness-contract violations
// ---------------------------------------------------------------------------

fn late_stream() -> Vec<Event> {
    let mut events: Vec<Event> = (0..100u64)
        .map(|i| {
            Event::data(
                i,
                Side::Probe,
                Tuple::new(Timestamp::from_micros(i as i64), 1, 1.0),
            )
        })
        .collect();
    // Far below the watermark (99 − lateness 10 = 89 ≫ 5): a violation.
    events.push(Event::data(
        100,
        Side::Base,
        Tuple::new(Timestamp::from_micros(5), 1, 0.0),
    ));
    events
}

fn late_query() -> OijQuery {
    OijQuery::builder()
        .preceding(Duration::from_micros(50))
        .lateness(Duration::from_micros(10))
        .agg(AggSpec::Sum)
        .emit(EmitMode::Eager)
        .build()
        .unwrap()
}

#[test]
fn late_policy_drop_keeps_best_effort_behavior() {
    with_watchdog(60, || {
        let cfg = EngineConfig::new(late_query(), 2).unwrap();
        assert_eq!(cfg.late_policy, LatePolicy::Drop);
        let (sink, rows) = Sink::collect();
        let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
        for ev in late_stream() {
            engine.push(ev).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert_eq!(stats.late_violations, 1);
        assert_eq!(stats.late_side_outputs, 0);
        let rows = rows.lock();
        // Best-effort: the violating base still produced a regular row.
        assert!(rows.iter().all(|r| !r.late));
        assert!(rows.iter().any(|r| r.seq == 100));
    });
}

#[test]
fn late_policy_side_output_routes_markers_to_the_sink() {
    with_watchdog(60, || {
        let mut cfg = EngineConfig::new(late_query(), 2).unwrap();
        cfg.late_policy = LatePolicy::SideOutput;
        let (sink, rows) = Sink::collect();
        let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
        for ev in late_stream() {
            engine.push(ev).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert_eq!(stats.late_violations, 1);
        assert_eq!(stats.late_side_outputs, 1);
        let rows = rows.lock();
        let markers: Vec<_> = rows.iter().filter(|r| r.late).collect();
        assert_eq!(markers.len(), 1);
        assert_eq!(markers[0].seq, 100);
        assert_eq!(markers[0].key, 1);
        // The violating tuple was routed, not processed: no regular row.
        assert!(rows.iter().filter(|r| !r.late).all(|r| r.seq != 100));
    });
}

#[test]
fn empty_fault_plan_keeps_every_engine_exact() {
    with_watchdog(90, || {
        // The zero-cost claim, behaviorally: a default (empty) plan must
        // leave results identical to the oracle.
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(100))
            .lateness(Duration::from_micros(50))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(5_000, 6, 50, 23);
        let mut want = Oracle::new(query.clone()).run(&events);
        want.sort_by_key(|r| r.seq);
        let cfg = EngineConfig::new(query, 3).unwrap();
        assert!(cfg.faults.is_empty());
        let (sink, rows) = Sink::collect();
        let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
        for ev in &events {
            engine.push(ev.clone()).unwrap();
        }
        engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    });
}
