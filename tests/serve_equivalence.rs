//! Serving-runtime differential suite: N concurrently served queries
//! must be **bit-identical** to N solo engine runs.
//!
//! The serving runtime (DESIGN.md §13) shares one single-writer probe
//! index across every registered plan. Its correctness argument is that
//! each base message carries the writer's probe-insert count at dispatch
//! as a visibility `bound`, and workers scan their cloned readers in
//! `(ts, seq)` order filtered to `seq < bound` — recovering exactly the
//! probe prefix (and the `f64` accumulation order) a solo run would
//! have used. This suite checks that claim end to end:
//!
//! - **16 concurrent queries** with distinct windows, aggregates and
//!   joiner counts, across backends {skip list, Jiffy-lite} × batch
//!   sizes {1, 64}: every query's rows equal its solo Key-OIJ run's
//!   rows, `assert_eq` on the full [`FeatureRow`] including float bits;
//! - **mid-stream registration**: a query admitted halfway through the
//!   feed — ingest never drains — answers exactly the solo rows from
//!   its admission point on (the shared index already holds the earlier
//!   probes);
//! - **fault isolation at scale**: one plan with an injected worker
//!   panic among 16 healthy neighbours; the panic is attributed to that
//!   plan alone and every neighbour stays bit-identical.
//!
//! Debug builds additionally arm the runtime's single-writer tripwire,
//! so any concurrent access to the shared writer fails these tests.

use oij::prelude::*;
use oij::serve::{ServeConfig, ServeRuntime};
use oij::Error;

const QUERIES: usize = 16;
const LATENESS_US: i64 = 20;

/// A seeded feed with disorder inside the queries' lateness bound, so
/// every run is exact and the row comparison is meaningful.
fn feed(tuples: usize) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: 16,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(LATENESS_US),
        payload_bytes: 0,
        seed: 0x5E21,
    }
    .generate()
}

/// Slot `i` gets its own window extent, aggregate and joiner count, so
/// the 16 concurrent plans genuinely differ.
fn query_for(slot: usize) -> OijQuery {
    const AGGS: [AggSpec; 5] = [
        AggSpec::Sum,
        AggSpec::Count,
        AggSpec::Avg,
        AggSpec::Min,
        AggSpec::Max,
    ];
    OijQuery::builder()
        .preceding(Duration::from_micros(50 + 25 * slot as i64))
        .lateness(Duration::from_micros(LATENESS_US))
        .agg(AGGS[slot % AGGS.len()])
        .emit(EmitMode::Eager)
        .build()
        .unwrap()
}

fn cfg_for(slot: usize, batch: usize, backend: IndexBackend) -> EngineConfig {
    EngineConfig::new(query_for(slot), 1 + slot % 2)
        .unwrap()
        .with_batch_size(batch)
        .with_index_backend(backend)
}

/// Runs `cfg` solo over `events` and returns its seq-sorted rows.
fn solo_rows(cfg: EngineConfig, events: &[Event]) -> (Vec<FeatureRow>, u64) {
    let (sink, rows) = Sink::collect();
    let mut solo = KeyOij::spawn(cfg, sink).unwrap();
    for ev in events {
        solo.push(ev.clone()).unwrap();
    }
    let stats = solo.finish().unwrap();
    let mut rows = rows.lock().clone();
    rows.sort_by_key(|r| r.seq);
    (rows, stats.results)
}

fn served_match_solo(backend: IndexBackend, batch: usize) {
    let events = feed(6000);
    let mut rt = ServeRuntime::new(ServeConfig::new().with_index_backend(backend)).unwrap();
    let mut served = Vec::new();
    for slot in 0..QUERIES {
        let cfg = cfg_for(slot, batch, backend);
        let (sink, rows) = Sink::collect();
        let id = rt
            .register(cfg.clone(), sink, Some(format!("slot-{slot}")))
            .unwrap();
        served.push((slot, id, cfg, rows));
    }
    for ev in &events {
        rt.push(ev.clone()).unwrap();
    }
    for (slot, id, cfg, rows) in served {
        let (want, want_results) = solo_rows(cfg, &events);
        let stats = rt.cancel(id).unwrap();
        assert_eq!(
            stats.results, want_results,
            "[{backend:?} batch={batch}] slot {slot}: result count"
        );
        assert_eq!(
            stats.shed_events, 0,
            "slot {slot}: lossless mode never sheds"
        );
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        assert_eq!(
            got, want,
            "[{backend:?} batch={batch}] slot {slot}: served rows must be \
             bit-identical to the solo run"
        );
    }
    let snap = rt.snapshot();
    assert_eq!(snap.active_queries, 0);
    assert_eq!(
        snap.probe_inserts as usize,
        events.len() - snap_bases(&events)
    );
}

fn snap_bases(events: &[Event]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e.as_data(), Some((Side::Base, _))))
        .count()
}

#[test]
fn sixteen_served_queries_match_solo_runs_skiplist() {
    served_match_solo(IndexBackend::SkipList, 1);
}

#[test]
fn sixteen_served_queries_match_solo_runs_skiplist_batched() {
    served_match_solo(IndexBackend::SkipList, 64);
}

#[test]
fn sixteen_served_queries_match_solo_runs_jiffy() {
    served_match_solo(IndexBackend::JiffyLite, 1);
}

#[test]
fn sixteen_served_queries_match_solo_runs_jiffy_batched() {
    served_match_solo(IndexBackend::JiffyLite, 64);
}

#[test]
fn mid_stream_registration_joins_without_draining_ingest() {
    let events = feed(4000);
    let cut = events.len() / 2;
    let mut rt = ServeRuntime::new(ServeConfig::new()).unwrap();

    // One query from the start, as a control.
    let early_cfg = cfg_for(0, 1, IndexBackend::SkipList);
    let (early_sink, early_rows) = Sink::collect();
    let early = rt.register(early_cfg.clone(), early_sink, None).unwrap();

    for ev in &events[..cut] {
        rt.push(ev.clone()).unwrap();
    }
    // Admission happens while ingest is live — no drain, no barrier.
    let late_cfg = cfg_for(3, 1, IndexBackend::SkipList);
    let (late_sink, late_rows) = Sink::collect();
    let late = rt.register(late_cfg.clone(), late_sink, None).unwrap();
    for ev in &events[cut..] {
        rt.push(ev.clone()).unwrap();
    }

    // The early query matches a full solo run.
    let (want_early, _) = solo_rows(early_cfg, &events);
    rt.cancel(early).unwrap();
    let mut got = early_rows.lock().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got, want_early);

    // The late query answers exactly the solo rows from its admission
    // point on: the shared index already held the earlier probes, so a
    // solo run over the full feed filtered to `seq >= cut` is the
    // ground truth.
    let (full, _) = solo_rows(late_cfg, &events);
    let want_late: Vec<FeatureRow> = full.into_iter().filter(|r| r.seq >= cut as u64).collect();
    rt.cancel(late).unwrap();
    let mut got = late_rows.lock().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got, want_late, "late-registered query rows");
}

#[test]
fn a_faulty_plan_among_sixteen_leaves_every_neighbour_bit_identical() {
    let events = feed(3000);
    let mut rt = ServeRuntime::new(ServeConfig::new()).unwrap();
    let mut healthy = Vec::new();
    for slot in 0..QUERIES {
        let cfg = cfg_for(slot, 1, IndexBackend::SkipList);
        let (sink, rows) = Sink::collect();
        let id = rt.register(cfg.clone(), sink, None).unwrap();
        healthy.push((slot, id, cfg, rows));
    }
    let mut bad = cfg_for(1, 1, IndexBackend::SkipList);
    bad.faults = FaultPlan::none().panic_at(0, 25, "injected serving-plan panic");
    let faulty = rt
        .register(bad, Sink::null(), Some("faulty".into()))
        .unwrap();

    for ev in &events {
        rt.push(ev.clone()).unwrap();
    }

    // The panic is attributed to the faulty plan alone.
    let err = rt.cancel(faulty).unwrap_err();
    assert!(
        matches!(
            err,
            Error::WorkerFailed {
                engine: "serve",
                ..
            }
        ),
        "got {err:?}"
    );

    for (slot, id, cfg, rows) in healthy {
        let (want, _) = solo_rows(cfg, &events);
        rt.cancel(id).unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        assert_eq!(got, want, "neighbour slot {slot} diverged after a fault");
    }
}
