//! Backend-differential engine suite: every `IndexBackend` must drive
//! every engine to **the same output** as the skip-list reference.
//!
//! The pluggable-index contract (DESIGN.md §12) promises that swapping
//! `EngineConfig::index_backend` is observationally invisible. This suite
//! races the three backends through the full engine stack, reusing the
//! batching-differential comparison policy from
//! `tests/property_equivalence.rs`:
//!
//! - **J = 1, eager**: bit-identical rows in the same emission order
//!   (late markers included) plus identical lateness accounting, across
//!   `batch_size ∈ {1, 2, 7, 64}` and both late policies;
//! - **multi-joiner, watermark**: sorted by `(seq, late)`; Key-OIJ is
//!   bit-identical, the parallel engines agree to 1e-9 (float
//!   accumulation order may differ across joiners, never row identity);
//! - **crash → recover**: a mid-run simulated process death followed by
//!   WAL replay must reproduce the uninterrupted run per backend — the
//!   recovery path rebuilds the index through the same `OijIndexWriter`
//!   interface the live path uses.
//!
//! Set `OIJ_INDEX_BACKEND=<label>` (`skiplist`, `jiffy-lite`,
//! `hint-lite`) to restrict the backend axis to one backend — the CI
//! matrix leg runs one process per backend. The skip-list *reference*
//! run is unaffected by the filter.
//!
//! On a row mismatch both row sets are dumped to
//! `target/index-equivalence/` before panicking; CI uploads that
//! directory as a failure artifact so divergences are diffable offline.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration as StdDuration;

use oij::durability::{recover, spawn_engine};
use oij::prelude::*;
use oij::Error;

/// The batching axis: pass-through plus the three coalescing sizes the
/// property-equivalence suite uses (prime, small, channel-bound).
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

const PARALLEL_ENGINES: [EngineKind; 3] = [
    EngineKind::KeyOij,
    EngineKind::ScaleOij,
    EngineKind::SplitJoin,
];

/// The backend axis, optionally restricted by `OIJ_INDEX_BACKEND`.
fn backends_under_test() -> Vec<IndexBackend> {
    match std::env::var("OIJ_INDEX_BACKEND") {
        Ok(raw) => {
            let backend = IndexBackend::from_label(&raw)
                .unwrap_or_else(|| panic!("OIJ_INDEX_BACKEND={raw:?} is not a backend label"));
            vec![backend]
        }
        Err(_) => IndexBackend::ALL.to_vec(),
    }
}

fn workload(
    tuples: usize,
    keys: u64,
    disorder_us: i64,
    probe_fraction: f64,
    seed: u64,
) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

/// Runs the test body under a watchdog thread: a hang turns into a loud
/// panic instead of a stuck CI job (same idiom as tests/recovery.rs).
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(StdDuration::from_secs(secs)) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            t.join().expect("test body panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: test exceeded {secs}s — backend run failed to stay bounded")
        }
    }
}

/// Runs `kind` on `backend` over `events` and returns the rows **in
/// emission order** plus the run stats.
fn run_on_backend(
    kind: EngineKind,
    backend: IndexBackend,
    query: &OijQuery,
    joiners: usize,
    batch: usize,
    late_policy: LatePolicy,
    events: &[Event],
) -> (Vec<FeatureRow>, RunStats) {
    let mut cfg = EngineConfig::new(query.clone(), joiners)
        .unwrap()
        .with_batch_size(batch)
        .with_index_backend(backend);
    cfg.late_policy = late_policy;
    let (sink, rows) = Sink::collect();
    let mut engine = spawn_engine(kind, cfg, sink).unwrap();
    for e in events {
        engine.push(e.clone()).expect("push");
    }
    let stats = engine.finish().expect("finish");
    let got = rows.lock().clone();
    (got, stats)
}

// ---------------------------------------------------------------------------
// Mismatch artifacts
// ---------------------------------------------------------------------------

/// `target/index-equivalence/` under the workspace root — uploaded by CI
/// as a failure artifact.
fn dump_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("index-equivalence")
}

/// Writes one row set as line-oriented text (aggregates as f64 bits so
/// the dump is lossless) and returns the path.
fn dump_rows(name: &str, rows: &[FeatureRow]) -> PathBuf {
    let dir = dump_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    let mut body = String::with_capacity(rows.len() * 48);
    for r in rows {
        body.push_str(&format!(
            "seq={} ts={} key={} late={} matched={} agg_bits={:?}\n",
            r.seq,
            r.ts.as_micros(),
            r.key,
            r.late,
            r.matched,
            r.agg.map(f64::to_bits),
        ));
    }
    let _ = std::fs::write(&path, body);
    path
}

fn dump_and_panic(ctx: &str, got: &[FeatureRow], want: &[FeatureRow], detail: String) -> ! {
    let tag: String = ctx
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let got_path = dump_rows(&format!("{tag}.got.txt"), got);
    let want_path = dump_rows(&format!("{tag}.want.txt"), want);
    panic!(
        "{ctx}: {detail} (got {} rows, want {}); dumps: {} / {}",
        got.len(),
        want.len(),
        got_path.display(),
        want_path.display()
    );
}

/// Bit-identical comparison, emission order included. `FeatureRow`'s
/// `PartialEq` compares the aggregate as raw f64 equality, so this pins
/// every bit of every row.
fn assert_rows_bit_identical(ctx: &str, got: &[FeatureRow], want: &[FeatureRow]) {
    if got == want {
        return;
    }
    let first = got
        .iter()
        .zip(want)
        .position(|(g, w)| g != w)
        .unwrap_or_else(|| got.len().min(want.len()));
    dump_and_panic(
        ctx,
        got,
        want,
        format!("rows diverge from the skip-list reference at position {first}"),
    );
}

fn sorted(mut rows: Vec<FeatureRow>) -> Vec<FeatureRow> {
    rows.sort_by_key(|r| (r.seq, r.late));
    rows
}

/// Sorted-by-identity comparison for multi-joiner runs: row identity
/// (`seq`, `late`, `matched`) is exact; the aggregate is bitwise when
/// `exact`, else within 1e-9 (cross-joiner accumulation order).
fn assert_rows_equal_sorted(ctx: &str, got: &[FeatureRow], want: &[FeatureRow], exact: bool) {
    if got.len() != want.len() {
        dump_and_panic(ctx, got, want, "row count diverges".to_string());
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let identity_ok = g.seq == w.seq && g.late == w.late && g.matched == w.matched;
        let agg_ok = if exact {
            g.agg.map(f64::to_bits) == w.agg.map(f64::to_bits)
        } else {
            g.agg_approx_eq(w, 1e-9)
        };
        if !(identity_ok && agg_ok) {
            dump_and_panic(ctx, got, want, format!("row {i} diverges: {g:?} vs {w:?}"));
        }
    }
}

// ---------------------------------------------------------------------------
// J = 1, eager: the bit-identity tier
// ---------------------------------------------------------------------------

/// Every backend × batch size × late policy must reproduce the skip-list
/// `batch_size = 1` run bit-identically on single-joiner eager configs —
/// rows, emission order, late markers, and lateness accounting. The
/// lateness budget sits below the disorder jitter so genuinely late
/// tuples exercise the per-backend `series_stamp` late rule.
#[test]
fn eager_single_joiner_is_bit_identical_across_backends() {
    with_watchdog(600, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(120))
            .lateness(Duration::from_micros(80))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Eager)
            .build()
            .unwrap();
        let events = workload(3_000, 6, 150, 0.5, 0x1DE9_0001);
        let engines = [
            EngineKind::KeyOij,
            EngineKind::ScaleOij,
            EngineKind::SplitJoin,
            EngineKind::OpenMldb,
        ];
        for policy in [LatePolicy::Drop, LatePolicy::SideOutput] {
            for kind in engines {
                let (want_rows, want_stats) =
                    run_on_backend(kind, IndexBackend::SkipList, &query, 1, 1, policy, &events);
                for backend in backends_under_test() {
                    for batch in BATCH_SIZES {
                        let ctx = format!(
                            "{kind:?} on {} batch={batch} policy={policy:?}",
                            backend.label()
                        );
                        let (got_rows, got_stats) =
                            run_on_backend(kind, backend, &query, 1, batch, policy, &events);
                        assert_rows_bit_identical(&ctx, &got_rows, &want_rows);
                        assert_eq!(
                            got_stats.late_violations, want_stats.late_violations,
                            "{ctx}: late_violations"
                        );
                        assert_eq!(
                            got_stats.late_side_outputs, want_stats.late_side_outputs,
                            "{ctx}: late_side_outputs"
                        );
                        assert_eq!(got_stats.results, want_stats.results, "{ctx}: results");
                        assert_eq!(
                            got_stats.input_tuples, want_stats.input_tuples,
                            "{ctx}: input_tuples"
                        );
                    }
                }
            }
        }
    });
}

/// Watermark mode at J = 1 drains at heartbeats, so even the emission
/// order is deterministic and must be backend-invariant (OpenMLDB is
/// excluded: it rejects watermark mode by contract).
#[test]
fn watermark_single_joiner_order_is_backend_invariant() {
    with_watchdog(300, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(200))
            .lateness(Duration::from_micros(150))
            .agg(AggSpec::Avg)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(3_000, 5, 120, 0.6, 0x1DE9_0002);
        for kind in PARALLEL_ENGINES {
            let (want_rows, _) = run_on_backend(
                kind,
                IndexBackend::SkipList,
                &query,
                1,
                1,
                LatePolicy::Drop,
                &events,
            );
            for backend in backends_under_test() {
                for batch in [1usize, 7] {
                    let ctx = format!("{kind:?} on {} batch={batch} watermark", backend.label());
                    let (got_rows, _) =
                        run_on_backend(kind, backend, &query, 1, batch, LatePolicy::Drop, &events);
                    assert_rows_bit_identical(&ctx, &got_rows, &want_rows);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Multi-joiner: sorted-by-identity tier
// ---------------------------------------------------------------------------

/// Multi-joiner watermark runs must agree with the skip-list reference
/// row-for-row after sorting by `(seq, late)`. Key-OIJ is single-threaded
/// per key and stays bit-identical; Scale-OIJ and SplitJoin may
/// accumulate floats in a different cross-joiner order, so their
/// aggregates get the usual 1e-9 tolerance — identity fields stay exact.
#[test]
fn multi_joiner_watermark_matches_reference_per_backend() {
    with_watchdog(600, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(150))
            .lateness(Duration::from_micros(200))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(4_000, 8, 150, 0.5, 0x1DE9_0003);
        for kind in PARALLEL_ENGINES {
            for joiners in [2usize, 4] {
                let (want_rows, want_stats) = run_on_backend(
                    kind,
                    IndexBackend::SkipList,
                    &query,
                    joiners,
                    1,
                    LatePolicy::Drop,
                    &events,
                );
                let want_rows = sorted(want_rows);
                for backend in backends_under_test() {
                    for batch in [1usize, 64] {
                        let ctx =
                            format!("{kind:?} on {} J={joiners} batch={batch}", backend.label());
                        let (got_rows, got_stats) = run_on_backend(
                            kind,
                            backend,
                            &query,
                            joiners,
                            batch,
                            LatePolicy::Drop,
                            &events,
                        );
                        let got_rows = sorted(got_rows);
                        let exact = kind == EngineKind::KeyOij;
                        assert_rows_equal_sorted(&ctx, &got_rows, &want_rows, exact);
                        assert_eq!(
                            got_stats.late_violations, want_stats.late_violations,
                            "{ctx}: late_violations"
                        );
                        assert_eq!(got_stats.results, want_stats.results, "{ctx}: results");
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Crash → recover replay per backend
// ---------------------------------------------------------------------------

/// Fresh scratch directory per test run (pid + counter: parallel test
/// binaries and threads never collide).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("oij-idxeq-{tag}-{}-{n}", std::process::id()))
}

fn run_until_crash(kind: EngineKind, cfg: EngineConfig, events: &[Event]) -> Vec<FeatureRow> {
    let (sink, rows) = Sink::collect();
    let mut engine = spawn_engine(kind, cfg, sink).unwrap();
    let mut crashed = false;
    for ev in events {
        if let Err(e) = engine.push(ev.clone()) {
            assert!(
                matches!(&e, Error::WorkerFailed { cause, .. } if cause.contains("simulated process crash")),
                "expected the crash fault, got {e:?}"
            );
            crashed = true;
            break;
        }
    }
    if !crashed {
        let e = engine.finish().expect_err("crash fault must surface");
        assert!(
            matches!(&e, Error::WorkerFailed { cause, .. } if cause.contains("simulated process crash")),
            "expected the crash fault, got {e:?}"
        );
    } else {
        let _ = engine.abort();
    }
    drop(engine);
    let out = rows.lock().clone();
    out
}

/// WAL replay rebuilds the index through the same `OijIndexWriter`
/// insertion path the live run uses, so crash → recover → resume must be
/// output-equivalent to an uninterrupted run **per backend** — and the
/// uninterrupted run itself must match the skip-list reference.
#[test]
fn crash_recovery_replays_identically_per_backend() {
    with_watchdog(600, || {
        let query = OijQuery::builder()
            .preceding(Duration::from_micros(120))
            .lateness(Duration::from_micros(200))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let events = workload(4_000, 6, 150, 0.5, 0x1DE9_0004);
        let base_cfg = |backend: IndexBackend| {
            EngineConfig::new(query.clone(), 2)
                .unwrap()
                .with_index_backend(backend)
        };

        // Skip-list reference: uninterrupted, non-durable.
        let (sink, rows) = Sink::collect();
        let mut engine =
            spawn_engine(EngineKind::ScaleOij, base_cfg(IndexBackend::SkipList), sink).unwrap();
        for ev in &events {
            engine.push(ev.clone()).unwrap();
        }
        engine.finish().unwrap();
        let reference = sorted(rows.lock().clone());

        for backend in backends_under_test() {
            let ctx = format!("ScaleOij crash-recovery on {}", backend.label());
            let dir = scratch_dir(backend.label());
            let durable = DurabilityConfig::new(dir.clone());

            // Uninterrupted run on this backend: must match the skip-list
            // reference (identity exact, aggregates to 1e-9 at J=2).
            let (sink, rows) = Sink::collect();
            let mut engine = spawn_engine(EngineKind::ScaleOij, base_cfg(backend), sink).unwrap();
            for ev in &events {
                engine.push(ev.clone()).unwrap();
            }
            let want_stats = engine.finish().unwrap();
            let want = sorted(rows.lock().clone());
            assert_rows_equal_sorted(&format!("{ctx}: uninterrupted"), &want, &reference, false);

            // Phase 1: crash mid-run with the WAL on.
            let crash_cfg = {
                let mut c = base_cfg(backend).with_durability(durable.clone());
                c.faults = FaultPlan::none().crash_at(0, 41);
                c.send_timeout = StdDuration::from_millis(500);
                c.channel_capacity = 16;
                c
            };
            let pre = run_until_crash(EngineKind::ScaleOij, crash_cfg, &events);

            // Phase 2: recover from the WAL, resume past the last logged
            // sequence, finish.
            let mut resume_cfg = base_cfg(backend);
            resume_cfg.durability = Some(durable);
            let (sink, rows) = Sink::collect();
            let (mut engine, report) = recover(EngineKind::ScaleOij, resume_cfg, sink).unwrap();
            let resume_after = report.last_seq.expect("the crashed run logged events");
            assert!(report.replayed > 0, "{ctx}: recovery must replay events");
            for ev in events.iter().filter(|e| e.seq > resume_after) {
                engine.push(ev.clone()).unwrap();
            }
            let stats = engine.finish().unwrap();
            let post = rows.lock().clone();

            // Exactly-once across the crash: no duplicate row identity,
            // and the union equals the uninterrupted run on this backend.
            let mut seen = HashSet::new();
            for r in pre.iter().chain(&post) {
                assert!(
                    seen.insert((r.seq, r.late)),
                    "{ctx}: duplicate row seq {} late {}",
                    r.seq,
                    r.late
                );
            }
            let union = sorted(pre.into_iter().chain(post).collect());
            assert_rows_equal_sorted(&format!("{ctx}: crash union"), &union, &want, false);
            assert_eq!(stats.input_tuples, want_stats.input_tuples, "{ctx}");
            assert_eq!(stats.results, want_stats.results, "{ctx}");
            assert!(stats.wal_records_replayed > 0, "{ctx}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
}
