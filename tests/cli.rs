//! End-to-end tests of the `oij` command-line binary.

use std::process::Command;

fn oij() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oij"))
}

#[test]
fn help_lists_commands() {
    let out = oij().arg("help").output().expect("run oij");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("oij run"));
    assert!(text.contains("oij gen"));
    assert!(text.contains("--engine"));
}

#[test]
fn workloads_prints_table_ii() {
    let out = oij().arg("workloads").output().expect("run oij");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["A", "B", "C", "D", "TableIV", "TableV"] {
        assert!(text.contains(name), "missing workload {name}:\n{text}");
    }
    assert!(text.contains("120K/s"));
}

#[test]
fn unknown_command_fails() {
    let out = oij().arg("frobnicate").output().expect("run oij");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn run_with_flags_reports_stats() {
    let out = oij()
        .args([
            "run",
            "--preceding",
            "200us",
            "--lateness",
            "50us",
            "--agg",
            "count",
            "--tuples",
            "20000",
            "--keys",
            "8",
            "--joiners",
            "2",
            "--engine",
            "scale",
            "--latency",
        ])
        .output()
        .expect("run oij");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("input tuples    : 20000"), "{text}");
    assert!(text.contains("throughput"), "{text}");
    assert!(text.contains("latency p50"), "{text}");
}

#[test]
fn run_with_sql_query() {
    let out = oij()
        .args([
            "run",
            "--sql",
            "SELECT sum(col2) OVER w1 FROM S WINDOW w1 AS (UNION R PARTITION BY key \
             ORDER BY timestamp ROWS_RANGE BETWEEN 1ms PRECEDING AND CURRENT ROW \
             LATENESS 100us)",
            "--tuples",
            "10000",
            "--engine",
            "key",
        ])
        .output()
        .expect("run oij");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("feature rows"));
}

#[test]
fn gen_then_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!("oij-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let feed = dir.join("feed.oij");

    let out = oij()
        .args([
            "gen",
            "--tuples",
            "5000",
            "--keys",
            "4",
            "--disorder",
            "100us",
            "--out",
            feed.to_str().unwrap(),
        ])
        .output()
        .expect("run oij gen");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(feed.exists());

    let out = oij()
        .args([
            "run",
            "--preceding",
            "500us",
            "--lateness",
            "100us",
            "--input",
            feed.to_str().unwrap(),
            "--engine",
            "splitjoin",
            "--joiners",
            "2",
        ])
        .output()
        .expect("run oij run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("input tuples    : 5000"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_engine_and_bad_duration_error_cleanly() {
    let out = oij()
        .args(["run", "--preceding", "1s", "--engine", "warp-drive"])
        .output()
        .expect("run oij");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));

    let out = oij()
        .args(["run", "--preceding", "1parsec"])
        .output()
        .expect("run oij");
    assert!(!out.status.success());
}

#[test]
fn serve_line_protocol_registers_feeds_and_cancels() {
    use std::io::Write;
    use std::process::Stdio;

    let mut child = oij()
        .args(["serve", "--joiners", "2", "--keys", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn oij serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"REGISTER -- name: spend\\nSELECT SUM(value) OVER w FROM base WINDOW w AS \
              (UNION probe PARTITION BY key ORDER BY ts ROWS_RANGE BETWEEN 100 PRECEDING \
              AND CURRENT ROW)\n\
              REGISTER nonsense query text\n\
              FEED 1000\n\
              STATS\n\
              CANCEL spend\n\
              QUIT\n",
        )
        .unwrap();
    let out = child.wait_with_output().expect("wait for oij serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("registered q0 (spend)"), "{text}");
    assert!(text.contains("rejected: SQL parse error"), "{text}");
    assert!(text.contains("fed 1000 events"), "{text}");
    assert!(text.contains("active=1 events=1000 probes="), "{text}");
    assert!(text.contains("name=spend joiners=2 pushed=1000"), "{text}");
    // 1000 alternating events = 500 base rows answered by the query.
    assert!(text.contains("cancelled q0: results=500 shed=0"), "{text}");
}

#[test]
fn serve_admission_rejects_over_budget() {
    use std::io::Write;
    use std::process::Stdio;

    let sql = "REGISTER SELECT COUNT(value) OVER w FROM base WINDOW w AS (UNION probe \
               PARTITION BY key ORDER BY ts ROWS_RANGE BETWEEN 10 PRECEDING AND CURRENT ROW)\n";
    let mut child = oij()
        .args(["serve", "--max-queries", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn oij serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(format!("{sql}{sql}QUIT\n").as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("wait for oij serve");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("registered q0"), "{text}");
    assert!(text.contains("rejected: admission rejected"), "{text}");
    assert!(text.contains("finished q0: results=0"), "{text}");
}

#[test]
fn missing_query_is_reported() {
    let out = oij().args(["run", "--tuples", "10"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--preceding"));
}
