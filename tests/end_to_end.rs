//! Cross-crate integration: SQL text → parsed plan → engine execution →
//! metrics, validated against the brute-force oracle.

use oij::engine::Oracle;
use oij::prelude::*;

/// The paper's Section II-A SQL, with the lateness extension, scaled to
/// microsecond event time for a fast test run.
const SQL: &str = "SELECT sum(col2) OVER w1 FROM S \
    WINDOW w1 AS (UNION R PARTITION BY key ORDER BY timestamp \
    ROWS_RANGE BETWEEN 500us PRECEDING AND CURRENT ROW LATENESS 100us)";

fn workload(tuples: usize, disorder_us: i64, keys: u64, seed: u64) -> Vec<Event> {
    SyntheticConfig {
        tuples,
        unique_keys: keys,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(disorder_us),
        payload_bytes: 0,
        seed,
    }
    .generate()
}

fn collect_sorted(rows: &oij::sync::Mutex<Vec<FeatureRow>>) -> Vec<FeatureRow> {
    let mut v = rows.lock().clone();
    v.sort_by_key(|r| r.seq);
    v
}

#[test]
fn sql_to_scale_oij_matches_oracle_exactly() {
    let plan = parse_sql(SQL).expect("paper SQL parses");
    assert_eq!(plan.base_table, "S");
    assert_eq!(plan.union_table, "R");
    let mut query = plan.to_oij_query().expect("plan lowers");
    query.emit = EmitMode::Watermark; // exact mode for the equality check

    let events = workload(20_000, 100, 16, 42);
    let want = Oracle::new(query.clone()).run(&events);

    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(EngineConfig::new(query, 4).unwrap(), sink).expect("spawn");
    for e in &events {
        engine.push(e.clone()).expect("push");
    }
    let stats = engine.finish().expect("finish");

    assert_eq!(stats.input_tuples, events.len() as u64);
    assert_eq!(stats.results as usize, want.len());
    let got = collect_sorted(&rows);
    let mut want = want;
    want.sort_by_key(|r| r.seq);
    for (g, o) in got.iter().zip(&want) {
        assert_eq!(g.matched, o.matched, "seq {}", g.seq);
        assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
    }
}

#[test]
fn every_engine_agrees_on_in_order_single_worker_runs() {
    // With one worker and an in-order stream, eager semantics are
    // deterministic for every engine, so all five implementations must
    // produce identical feature rows.
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(300))
        .agg(AggSpec::Avg)
        .build()
        .unwrap();
    let events = workload(10_000, 0, 8, 7);
    let want = Oracle::new(query.clone()).run(&events);

    type Spawner = fn(EngineConfig, Sink) -> oij::Result<Box<dyn OijEngine>>;
    let spawners: Vec<(&str, Spawner)> = vec![
        ("key-oij", |c, s| Ok(Box::new(KeyOij::spawn(c, s)?))),
        ("scale-oij", |c, s| Ok(Box::new(ScaleOij::spawn(c, s)?))),
        ("splitjoin", |c, s| Ok(Box::new(SplitJoin::spawn(c, s)?))),
        ("openmldb", |c, s| {
            Ok(Box::new(OpenMldbBaseline::spawn(c, s)?))
        }),
    ];
    for (name, spawn) in spawners {
        let (sink, rows) = Sink::collect();
        let mut engine = spawn(EngineConfig::new(query.clone(), 1).unwrap(), sink).expect("spawn");
        for e in &events {
            engine.push(e.clone()).expect("push");
        }
        let stats = engine.finish().expect("finish");
        assert_eq!(stats.results as usize, want.len(), "{name}");
        let got = collect_sorted(&rows);
        for (g, o) in got.iter().zip(&want) {
            assert_eq!(g.matched, o.matched, "{name} seq {}", g.seq);
            assert!(g.agg_approx_eq(o, 1e-9), "{name} seq {}", g.seq);
        }
    }
}

#[test]
fn exact_engines_agree_under_disorder_and_parallelism() {
    // Watermark mode must make Key-OIJ, Scale-OIJ (± incremental) and
    // SplitJoin all exact — one shared ground truth.
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(400))
        .lateness(Duration::from_micros(250))
        .agg(AggSpec::Sum)
        .emit(EmitMode::Watermark)
        .build()
        .unwrap();
    let events = workload(15_000, 250, 6, 99);
    let want = {
        let mut w = Oracle::new(query.clone()).run(&events);
        w.sort_by_key(|r| r.seq);
        w
    };

    type Spawner = fn(EngineConfig, Sink) -> oij::Result<Box<dyn OijEngine>>;
    let spawners: Vec<(&str, Spawner, bool)> = vec![
        (
            "key-oij",
            (|c, s| Ok(Box::new(KeyOij::spawn(c, s)?))) as Spawner,
            false,
        ),
        (
            "scale-oij+inc",
            |c, s| Ok(Box::new(ScaleOij::spawn(c, s)?)),
            false,
        ),
        (
            "scale-oij-inc",
            |c, s| Ok(Box::new(ScaleOij::spawn(c, s)?)),
            true,
        ),
        (
            "splitjoin",
            |c, s| Ok(Box::new(SplitJoin::spawn(c, s)?)),
            false,
        ),
    ];
    for (name, spawn, no_inc) in spawners {
        let mut cfg = EngineConfig::new(query.clone(), 4).unwrap();
        if no_inc {
            cfg = cfg.without_incremental();
        }
        let (sink, rows) = Sink::collect();
        let mut engine = spawn(cfg, sink).expect("spawn");
        for e in &events {
            engine.push(e.clone()).expect("push");
        }
        engine.finish().expect("finish");
        let got = collect_sorted(&rows);
        assert_eq!(got.len(), want.len(), "{name}");
        for (g, o) in got.iter().zip(&want) {
            assert_eq!(g.matched, o.matched, "{name} seq {}", g.seq);
            assert!(g.agg_approx_eq(o, 1e-9), "{name} seq {}", g.seq);
        }
    }
}

#[test]
fn run_stats_are_consistent_with_sink_contents() {
    let query = OijQuery::builder()
        .preceding(Duration::from_micros(200))
        .agg(AggSpec::Count)
        .build()
        .unwrap();
    let events = workload(8_000, 0, 4, 3);
    let bases = events
        .iter()
        .filter(|e| matches!(e.as_data(), Some((Side::Base, _))))
        .count();

    let (sink, rows) = Sink::collect();
    let cfg = EngineConfig::new(query, 2)
        .unwrap()
        .with_instrument(Instrumentation::full());
    let mut engine = KeyOij::spawn(cfg, sink).unwrap();
    for e in &events {
        engine.push(e.clone()).unwrap();
    }
    let stats = engine.finish().unwrap();

    assert_eq!(stats.results as usize, bases);
    assert_eq!(rows.lock().len(), bases);
    assert_eq!(stats.input_tuples, events.len() as u64);
    assert_eq!(
        stats.joiner_loads.iter().sum::<u64>(),
        events.len() as u64,
        "every tuple processed exactly once"
    );
    let lat = stats.latency.expect("latency on");
    assert_eq!(lat.count() as usize, bases);
    let eff = stats.effectiveness.expect("effectiveness on");
    assert!((0.0..=1.0).contains(&eff));
    assert!(stats.breakdown.expect("breakdown on").total_ns() > 0);
    assert!(stats.throughput > 0.0);
}
