//! Learning the lateness bound online — no prior knowledge required.
//!
//! The paper lists "tunable accuracy without prior knowledge (i.e.,
//! lateness)" as future work. This example shows the workflow with
//! `DisorderEstimator`: sample the live stream, read off the lateness for
//! a target coverage, then run the join with the learned bound and verify
//! the violation rate matches the chosen coverage.
//!
//! Run with: `cargo run --release --example adaptive_lateness`

use oij::metrics::DisorderEstimator;
use oij::prelude::*;

fn main() -> oij::Result<()> {
    // A stream whose disorder we pretend not to know: bulk of tuples within
    // ~2 ms, occasional stragglers much later.
    let events = SyntheticConfig {
        tuples: 300_000,
        unique_keys: 50,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_millis(2),
        payload_bytes: 0,
        seed: 0x5EED,
    }
    .generate();

    // Phase 1: observe a prefix of the stream.
    let mut est = DisorderEstimator::new();
    for e in events.iter().take(50_000) {
        if let Some((_, tuple)) = e.as_data() {
            est.observe(tuple.ts);
        }
    }
    println!("== learned disorder profile (50k-tuple sample) ==");
    println!("late fraction   : {:.1}%", est.late_fraction() * 100.0);
    println!("max disorder    : {}", est.max_disorder());
    for coverage in [0.9, 0.99, 0.999, 1.0] {
        println!(
            "lateness for {:>6.1}% coverage: {}",
            coverage * 100.0,
            est.recommended_lateness(coverage)
        );
    }

    // Phase 2: run the join with the learned bound plus a 10% safety
    // margin — a finite sample cannot bound the unseen tail exactly. (The
    // sub-1.0 coverages above trade bounded violation rates for memory,
    // quantised by the histogram's ~6% bucket resolution.)
    let learned =
        Duration::from_micros((est.recommended_lateness(1.0).as_micros() as f64 * 1.1) as i64);
    let query = OijQuery::builder()
        .preceding(Duration::from_millis(5))
        .lateness(learned)
        .agg(AggSpec::Count)
        .build()?;
    let (sink, _) = Sink::collect();
    let mut engine = ScaleOij::spawn(EngineConfig::new(query, 2)?, sink)?;
    for e in &events {
        engine.push(e.clone())?;
    }
    let stats = engine.finish()?;

    let violation_rate = stats.late_violations as f64 / stats.input_tuples as f64;
    println!("\n== join with learned lateness {learned} ==");
    println!("throughput          : {:.0} tuples/s", stats.throughput);
    println!(
        "lateness violations : {} / {} ({:.3}%)",
        stats.late_violations,
        stats.input_tuples,
        violation_rate * 100.0
    );
    // The margined bound covers the generator's true disorder, so the
    // remainder of the stream is violation-free.
    assert_eq!(
        stats.late_violations, 0,
        "margined full-coverage bound must eliminate violations"
    );
    println!("\nno violations under the learned bound. ✔");
    Ok(())
}
