//! Product-recommendation features — the paper's motivating scenario.
//!
//! "When a user is browsing or searching (recorded in the action table),
//! we recommend products based on pre-defined features, which may require
//! joining the tuples in the history orders within the last certain
//! period." Here the *action* stream is the base side and the *order*
//! stream is the probe side; the feature is the sum of order amounts in
//! the last hour per user.
//!
//! Run with: `cargo run --release --example recommendation`

use oij::prelude::*;

const USERS: u64 = 500;

fn main() -> oij::Result<()> {
    // Feature: sum(order.amount) over the last hour of each user action.
    // Event time is scaled 3600:1 (1 "hour" = 1 s of event time) so the
    // example finishes instantly; the join logic is unit-agnostic.
    let query = OijQuery::builder()
        .preceding(Duration::from_secs(1))
        .lateness(Duration::from_millis(20))
        .agg(AggSpec::Sum)
        .build()?;

    // A synthetic day of shopping traffic: orders (probe) outnumbered by
    // browsing actions (base) 1:4, Zipf-skewed users, mild disorder.
    let events = SyntheticConfig {
        tuples: 300_000,
        unique_keys: USERS,
        key_dist: KeyDist::Zipf { exponent: 0.8 },
        probe_fraction: 0.2,
        spacing: Duration::from_micros(2),
        disorder: Duration::from_millis(20),
        payload_bytes: 32,
        seed: 2024,
    }
    .generate();

    let (sink, rows) = Sink::collect();
    let cfg = EngineConfig::new(query, 4)?.with_instrument(Instrumentation::latency());
    let mut engine = ScaleOij::spawn(cfg, sink)?;
    for e in &events {
        engine.push(e.clone())?;
    }
    let stats = engine.finish()?;

    println!("== recommendation feature pipeline ==");
    println!("input tuples     : {}", stats.input_tuples);
    println!("feature rows     : {}", stats.results);
    println!("throughput       : {:.0} tuples/s", stats.throughput);
    if let Some(lat) = &stats.latency {
        println!(
            "latency p50/p99  : {:.2} ms / {:.2} ms",
            lat.quantile_ns(0.5) as f64 / 1e6,
            lat.quantile_ns(0.99) as f64 / 1e6
        );
    }
    println!("schedule changes : {}", stats.schedule_changes);

    // Show the hottest user's latest features, as a recommender would read
    // them.
    let rows = rows.lock();
    let mut hot: Vec<&FeatureRow> = rows.iter().filter(|r| r.key == 0).collect();
    hot.sort_by_key(|r| r.seq);
    println!("\nlatest features for the hottest user (key 0):");
    for row in hot.iter().rev().take(5) {
        println!(
            "  action@{:>9}us  spend_last_hour={:>10.2}  orders={}",
            row.ts.as_micros(),
            row.agg.unwrap_or(0.0),
            row.matched
        );
    }
    Ok(())
}
