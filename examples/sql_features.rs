//! From SQL to features: the OpenMLDB window-union dialect end to end.
//!
//! Parses the exact SQL from Section II-A of the paper, lowers it to an
//! OIJ plan, and executes it with Scale-OIJ over generated streams.
//!
//! Run with: `cargo run --release --example sql_features`

use oij::prelude::*;

const FEATURE_SQL: &str = "\
SELECT sum(col2) OVER w1 FROM S
WINDOW w1 AS (
    UNION R
    PARTITION BY key
    ORDER BY timestamp
    ROWS_RANGE
    BETWEEN 1s PRECEDING AND CURRENT ROW
    LATENESS 50ms);";

fn main() -> oij::Result<()> {
    println!("feature definition:\n{FEATURE_SQL}\n");

    let plan = parse_sql(FEATURE_SQL)?;
    println!(
        "parsed: {}({}) over base '{}' ∪ probe '{}', key '{}', order '{}'",
        plan.agg.sql_name(),
        plan.agg_column,
        plan.base_table,
        plan.union_table,
        plan.partition_key,
        plan.order_column
    );
    println!(
        "window: [ts - {}, ts + {}], lateness {}\n",
        plan.preceding, plan.following, plan.lateness
    );

    let query = plan.to_oij_query()?;
    let events = SyntheticConfig {
        tuples: 200_000,
        unique_keys: 64,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(20),
        disorder: Duration::from_millis(50),
        payload_bytes: 0,
        seed: 31415,
    }
    .generate();

    let (sink, rows) = Sink::collect();
    let cfg = EngineConfig::new(query, 4)?.with_instrument(Instrumentation::latency());
    let mut engine = ScaleOij::spawn(cfg, sink)?;
    for e in &events {
        engine.push(e.clone())?;
    }
    let stats = engine.finish()?;

    println!("executed on Scale-OIJ with 4 joiners:");
    println!("  feature rows : {}", stats.results);
    println!("  throughput   : {:.0} tuples/s", stats.throughput);
    if let Some(lat) = &stats.latency {
        println!(
            "  p99 latency  : {:.2} ms (bank SLA: 20 ms)",
            lat.quantile_ns(0.99) as f64 / 1e6
        );
    }

    let rows = rows.lock();
    println!("\nfirst feature rows:");
    for row in rows.iter().take(5) {
        println!(
            "  key={:<3} ts={:>9}us  {}(col2)={:.2}",
            row.key,
            row.ts.as_micros(),
            plan.agg.sql_name(),
            row.agg.unwrap_or(0.0)
        );
    }
    Ok(())
}
