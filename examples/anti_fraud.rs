//! Anti-fraud features with exact results under heavy disorder.
//!
//! Banks are the paper's most demanding OpenMLDB users ("a 20 ms latency
//! is strictly required by an online banking service"), and fraud features
//! must be *exactly* accurate. This example scores card swipes (base
//! stream) against the count of that card's transactions in the preceding
//! interval (probe stream), with heavily disordered arrivals, using
//! watermark emission for exactness — and verifies every feature against
//! the brute-force oracle.
//!
//! Run with: `cargo run --release --example anti_fraud`

use oij::engine::Oracle;
use oij::prelude::*;

fn main() -> oij::Result<()> {
    // Feature: number of transactions on the same card in the last 500 ms
    // (event time), tolerating up to 200 ms of disorder, exact.
    let query = OijQuery::builder()
        .preceding(Duration::from_millis(500))
        .lateness(Duration::from_millis(200))
        .agg(AggSpec::Count)
        .emit(EmitMode::Watermark)
        .build()?;

    let events = SyntheticConfig {
        tuples: 100_000,
        unique_keys: 200, // cards
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.7,
        spacing: Duration::from_micros(10),
        disorder: Duration::from_millis(200),
        payload_bytes: 0,
        seed: 777,
    }
    .generate();

    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(EngineConfig::new(query.clone(), 4)?, sink)?;
    for e in &events {
        engine.push(e.clone())?;
    }
    let stats = engine.finish()?;

    // Ground truth from the single-threaded oracle.
    let oracle = Oracle::new(query).run(&events);
    let mut got = rows.lock().clone();
    got.sort_by_key(|r| r.seq);
    assert_eq!(got.len(), oracle.len(), "row cardinality");
    let mut mismatches = 0;
    for (g, o) in got.iter().zip(&oracle) {
        if !g.agg_approx_eq(o, 1e-9) {
            mismatches += 1;
        }
    }

    println!("== anti-fraud feature pipeline (exact mode) ==");
    println!("input tuples      : {}", stats.input_tuples);
    println!("swipes scored     : {}", stats.results);
    println!("lateness violations: {}", stats.late_violations);
    println!("oracle mismatches : {mismatches} (must be 0)");
    assert_eq!(mismatches, 0, "watermark mode must be exact");

    // A trivial velocity rule on top of the feature.
    let flagged = got.iter().filter(|r| r.agg.unwrap_or(0.0) >= 30.0).count();
    println!(
        "cards flagged (≥30 txns / 500ms window): {flagged} of {} swipes",
        got.len()
    );
    println!("\nexact under 200ms disorder. ✔");
    Ok(())
}
