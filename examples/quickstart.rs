//! Quickstart: one online interval join, end to end.
//!
//! Joins a tiny probe stream into per-base-tuple relative windows and
//! prints the resulting feature rows — the example of Figure 3a in the
//! paper, with a `(-2s, 0)` window.
//!
//! Run with: `cargo run --example quickstart`

use oij::prelude::*;

fn main() -> oij::Result<()> {
    // Window: 2 seconds preceding each base tuple, aggregate = sum.
    let query = OijQuery::builder()
        .preceding(Duration::from_secs(2))
        .agg(AggSpec::Sum)
        .build()?;

    let (sink, rows) = Sink::collect();
    let mut engine = ScaleOij::spawn(EngineConfig::new(query, 2)?, sink)?;

    // The streams of Figure 3a: r1..r5 on the probe side, s1..s3 on the
    // base side, timestamps in seconds.
    let secs = |s: i64| Timestamp::from_secs(s);
    let feed = [
        (Side::Probe, secs(1), 10.0), // r1
        (Side::Base, secs(2), 0.0),   // s1 → window [0s, 2s] → {r1}
        (Side::Probe, secs(3), 20.0), // r2
        (Side::Probe, secs(5), 30.0), // r3
        (Side::Probe, secs(6), 40.0), // r4
        (Side::Base, secs(7), 0.0),   // s2 → window [5s, 7s] → {r3, r4}
        (Side::Probe, secs(8), 50.0), // r5
        (Side::Base, secs(9), 0.0),   // s3 → window [7s, 9s] → {r5}
    ];
    for (seq, (side, ts, value)) in feed.into_iter().enumerate() {
        engine.push(Event::data(seq as u64, side, Tuple::new(ts, 42, value)))?;
    }

    let stats = engine.finish()?;
    println!(
        "processed {} tuples, {} feature rows\n",
        stats.input_tuples, stats.results
    );

    let mut rows = rows.lock().clone();
    rows.sort_by_key(|r| r.seq);
    for row in &rows {
        println!(
            "base@{}s  key={}  sum={:<6}  matched={}",
            row.ts.as_micros() / 1_000_000,
            row.key,
            row.agg.unwrap_or(f64::NAN),
            row.matched
        );
    }
    assert_eq!(rows[0].agg, Some(10.0));
    assert_eq!(rows[1].agg, Some(70.0));
    assert_eq!(rows[2].agg, Some(50.0));
    println!("\nmatches the paper's Figure 3a. ✔");
    Ok(())
}
