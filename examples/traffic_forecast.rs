//! Network-traffic forecast features under rotating hot spots.
//!
//! One of OpenMLDB's production scenarios is network traffic forecasting.
//! Traffic is bursty: a changing subset of cells is hot at any moment —
//! exactly the situation the paper's Figure 14 stresses. This example
//! computes per-cell byte-rate features (avg bytes over the preceding
//! interval) with a rotating hot set, and contrasts Key-OIJ's static
//! partitioning with Scale-OIJ's dynamic schedule.
//!
//! Run with: `cargo run --release --example traffic_forecast`

use oij::prelude::*;

fn run<E: OijEngine>(mut engine: E, events: &[Event]) -> oij::Result<RunStats> {
    for e in events {
        engine.push(e.clone())?;
    }
    engine.finish()
}

fn main() -> oij::Result<()> {
    let query = OijQuery::builder()
        .preceding(Duration::from_millis(5))
        .lateness(Duration::from_micros(500))
        .agg(AggSpec::Avg)
        .build()?;

    // 10k cells, but 20 hot ones carry 90% of the packets; the hot set
    // rotates every 50ms of event time.
    let events = SyntheticConfig {
        tuples: 400_000,
        unique_keys: 10_000,
        key_dist: KeyDist::RotatingHot {
            hot_keys: 20,
            hot_fraction: 0.9,
            period: Duration::from_millis(50),
        },
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::from_micros(500),
        payload_bytes: 0,
        seed: 99,
    }
    .generate();

    let joiners = 4;
    println!("== traffic forecast: rotating hot cells, {joiners} joiners ==\n");

    let mut cfg = EngineConfig::new(query.clone(), joiners)?;
    cfg.schedule_interval = std::time::Duration::from_millis(2);
    let scale = run(ScaleOij::spawn(cfg, Sink::null())?, &events)?;
    let key = run(
        KeyOij::spawn(EngineConfig::new(query, joiners)?, Sink::null())?,
        &events,
    )?;

    let report = |name: &str, s: &RunStats| {
        println!(
            "{name:<22} throughput {:>10.0} t/s   unbalancedness {:.3}   loads {:?}",
            s.throughput, s.unbalancedness, s.joiner_loads
        );
    };
    report(EngineKind::ScaleOij.label(), &scale);
    report(EngineKind::KeyOij.label(), &key);
    println!(
        "\nScale-OIJ republished its schedule {} times to track the hot set.",
        scale.schedule_changes
    );
    Ok(())
}
