//! # oij — scalable online interval join for feature engineering
//!
//! A from-scratch Rust reproduction of *"Scalable Online Interval Join on
//! Modern Multicore Processors in OpenMLDB"* (ICDE 2023): the **Scale-OIJ**
//! engine with its SWMR time-travel index, dynamic balanced scheduling and
//! incremental window aggregation — plus every baseline the paper
//! evaluates (Key-OIJ, SplitJoin-OIJ, an OpenMLDB-style shared store), a
//! workload generator suite, a metrics toolkit, an LLC simulator and an
//! OpenMLDB-dialect SQL front-end.
//!
//! This facade crate re-exports the workspace's public surface. Most users
//! want:
//!
//! - [`engine::ScaleOij`] (or another [`engine::OijEngine`] implementation),
//! - [`OijQuery`] / [`sql::parse`] to describe the join,
//! - [`workload`] to generate input streams,
//! - [`metrics`] to interpret the returned [`engine::RunStats`].
//!
//! ```
//! use oij::prelude::*;
//!
//! // sum of probe values over the last 100µs per key, exact results
//! let query = OijQuery::builder()
//!     .preceding(Duration::from_micros(100))
//!     .lateness(Duration::from_micros(20))
//!     .agg(AggSpec::Sum)
//!     .emit(EmitMode::Watermark)
//!     .build()
//!     .unwrap();
//!
//! let (sink, rows) = Sink::collect();
//! let mut engine = ScaleOij::spawn(EngineConfig::new(query, 2).unwrap(), sink).unwrap();
//! engine.push(Event::data(0, Side::Probe, Tuple::new(Timestamp::from_micros(50), 1, 3.0))).unwrap();
//! engine.push(Event::data(1, Side::Base, Tuple::new(Timestamp::from_micros(120), 1, 0.0))).unwrap();
//! let stats = engine.finish().unwrap();
//! assert_eq!(stats.results, 1);
//! assert_eq!(rows.lock()[0].agg, Some(3.0));
//! ```

#![warn(missing_docs)]

pub use oij_common::{
    AggSpec, Duration, EmitMode, Error, Event, EventKind, FeatureRow, Key, OijQuery,
    OijQueryBuilder, Result, Side, Timestamp, Tuple, Watermark, WatermarkTracker, Window,
    WindowSpec,
};

/// The OIJ engines and their shared interface (re-export of `oij-core`).
pub mod engine {
    pub use oij_core::config::{EngineConfig, Instrumentation, LatePolicy, SinkRetryPolicy};
    pub use oij_core::engine::{EngineKind, OijEngine, RunStats};
    pub use oij_core::faults::{FailureCell, FaultPlan, WorkerFailure, SCHEDULER};
    pub use oij_core::scaleoij::schedule::{rebalance, PartitionStats, Schedule};
    pub use oij_core::sink::Sink;
    pub use oij_core::{KeyOij, OpenMldbBaseline, Oracle, ScaleOij, SplitJoin};
}

/// Durability & crash recovery: the write-ahead log + checkpoint
/// configuration (re-export of `oij-durability`) and the recovery driver
/// (re-export of `oij_core::recovery`). See DESIGN.md §11.
pub mod durability {
    pub use oij_core::recovery::{recover, spawn_engine, RecoveryReport};
    pub use oij_core::{DurabilityConfig, FsyncPolicy};
}

/// Window aggregation building blocks (re-export of `oij-agg`).
pub mod agg {
    pub use oij_agg::{FullWindowAgg, PartialAgg, RunningAgg, TwoStackAgg};
}

/// The SWMR skip list and time-travel index (re-export of `oij-skiplist`),
/// plus the pluggable index-backend contract (re-export of `oij-index`):
/// the [`OijIndex`](index::OijIndex) trait family, the
/// [`IndexBackend`](index::IndexBackend) selector carried by
/// `EngineConfig`, and the backend implementations.
pub mod index {
    pub use oij_index::{
        BackendReader, BackendWriter, HintIndex, IndexBackend, JiffyIndex, OijIndex,
        OijIndexReader, OijIndexWriter, SkipListIndex,
    };
    pub use oij_skiplist::{
        IndexReader, IndexWriter, RcuCell, Reader, SwmrSkipList, TimeTravelIndex, Writer,
    };
}

/// Stream workload generators (re-export of `oij-workload`).
pub mod workload {
    pub use oij_workload::{
        read_csv, read_events, write_csv, write_events, ChurnAction, ChurnPlan, KeyDist,
        NamedWorkload, OpenLoopConfig, OpenLoopPlan, Pacing, PaperSpec, SyntheticConfig,
    };
}

/// Measurement toolkit (re-export of `oij-metrics`).
pub mod metrics {
    pub use oij_metrics::{
        effectiveness, unbalancedness, BusyTimeline, DisorderEstimator, EffectivenessMeter,
        LatencyHistogram, ThroughputMeter, TimeBreakdown,
    };
}

/// Software LLC model (re-export of `oij-cachesim`).
pub mod cache {
    pub use oij_cachesim::{CacheConfig, CacheSim};
}

/// The OpenMLDB SQL dialect front-end (re-export of `oij-sql`).
pub mod sql {
    pub use oij_sql::{parse, parse_many, WindowUnionQuery};
}

/// The multi-query feature-serving runtime (re-export of `oij-serve`):
/// concurrent OIJ plans over one shared ingest with admission control,
/// backpressure, and per-query fault isolation. See DESIGN.md §13.
pub mod serve {
    pub use oij_serve::{QueryId, QueryStats, ServeConfig, ServeRuntime, ServeSnapshot};
}

/// Class-carrying locks behind the workspace lockdep witness (re-export
/// of `oij_common::lockdep`). [`Sink::collect`](engine::Sink::collect)
/// hands back rows behind one of these; `lock()` returns the guard
/// directly (non-poisoning, no `Result`).
pub mod sync {
    pub use oij_common::lockdep::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
}

/// Everything a typical application needs, in one import.
pub mod prelude {
    pub use crate::durability::{recover, DurabilityConfig, FsyncPolicy, RecoveryReport};
    pub use crate::engine::{
        EngineConfig, EngineKind, FaultPlan, Instrumentation, KeyOij, LatePolicy, OijEngine,
        OpenMldbBaseline, Oracle, RunStats, ScaleOij, Sink, SinkRetryPolicy, SplitJoin,
    };
    pub use crate::index::IndexBackend;
    pub use crate::serve::{ServeConfig, ServeRuntime};
    pub use crate::sql::parse as parse_sql;
    pub use crate::workload::{KeyDist, NamedWorkload, SyntheticConfig};
    pub use crate::{
        AggSpec, Duration, EmitMode, Event, FeatureRow, Key, OijQuery, Side, Timestamp, Tuple,
        WindowSpec,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let q = OijQuery::sum_over_preceding(Duration::from_micros(10), Duration::ZERO).unwrap();
        let cfg = EngineConfig::new(q, 1).unwrap();
        let (sink, _) = Sink::collect();
        let mut e = KeyOij::spawn(cfg, sink).unwrap();
        e.push(Event::data(
            0,
            Side::Base,
            Tuple::new(Timestamp::from_micros(5), 1, 1.0),
        ))
        .unwrap();
        let stats = e.finish().unwrap();
        assert_eq!(stats.results, 1);
    }
}
