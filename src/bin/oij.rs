//! `oij` — command-line driver for the online interval join engines.
//!
//! ```text
//! oij workloads                         # show the paper's workload proxies
//! oij gen --tuples 200000 --keys 50 --disorder 2ms --out feed.oij
//! oij run --sql "SELECT sum(v) OVER w FROM s WINDOW w AS (UNION r \
//!          PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING \
//!          AND CURRENT ROW LATENESS 100ms)" --engine scale --joiners 4
//! oij run --preceding 500us --lateness 100us --agg count --input feed.oij
//! ```
//!
//! `run` prints throughput, latency percentiles and balance statistics for
//! the chosen engine over a generated or replayed feed.

use std::process::ExitCode;

use oij::prelude::*;
use oij::workload::{read_csv, read_events, write_csv, write_events};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("workloads") => cmd_workloads(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (see `oij help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
oij — scalable online interval join

USAGE:
  oij workloads                     print the paper's workload proxies
  oij gen  [feed options] --out F   generate a replayable event feed
  oij run  [query] [feed] [engine]  execute one join and report statistics
  oij serve [budgets]               multi-query serving runtime on stdin

QUERY (either):
  --sql <text>                      OpenMLDB WINDOW ... UNION ... ROWS_RANGE
  --preceding <dur> [--following <dur>] [--lateness <dur>] [--agg sum|count|avg|min|max]
  --emit eager|watermark            emission semantics (default eager)

FEED (generated unless --input):
  --input <file>                    replay a feed (.csv or binary `oij gen` output)
  --tuples <n>      (default 200000)
  --keys <n>        (default 100)
  --disorder <dur>  (default = lateness)
  --probe <0..1>    (default 0.5)
  --zipf <exp>      Zipf-skewed keys (default uniform)
  --seed <n>

ENGINE:
  --engine scale|scale-noinc|key|splitjoin|openmldb   (default scale)
  --index skiplist|jiffy-lite|hint-lite   window-index backend (default skiplist)
  --joiners <n>     (default 4)
  --batch <n>       coalesce up to n tuples per routed message (default 1 = off)
  --rate <tuples/s> pace arrivals (default: full speed)
  --latency         record latency percentiles

SERVE (line protocol on stdin; budgets reject with a reason):
  --max-queries <n>   admission: concurrent query limit (default 64)
  --max-joiners <n>   admission: total joiner-thread budget (default 256)
  --capacity <n>      admission: per-query channel-capacity cap (default 65536)
  --joiners <n>       joiner threads per SQL-registered query (default 1)
  --index <backend>   shared-store backend (default skiplist)
  --keys <n>          key space of the FEED pump (default 16)
  --shed              drop base messages instead of blocking when a
                      query's channel is full (counts shed events)
  commands:  REGISTER <sql>   CANCEL <id|name>   STATS   FEED <n>   QUIT
  (`\\n` in REGISTER splits lines, so `-- name: x` labels fit one line)

DURATIONS: 500us, 20ms, 1s, 10m, 2h (bare numbers are milliseconds).
";

fn cmd_workloads() -> Result<(), String> {
    println!("paper Table II workload proxies (see DESIGN.md §5):\n");
    for w in NamedWorkload::all_real() {
        let rate = w
            .paper
            .arrival_rate
            .map(|r| format!("{:.0}K/s", r / 1e3))
            .unwrap_or_else(|| "∞".into());
        println!(
            "  {}  [{}]  v={rate:<8} u={:<4} |w|={}s l={}s  → proxy w={}µs l={}µs (~{:.0} matches/window)",
            w.name,
            w.sector,
            w.paper.unique_keys,
            w.paper.window_secs,
            w.paper.lateness_secs,
            w.window_us,
            w.lateness_us,
            w.paper.matches_per_window
        );
    }
    for w in [NamedWorkload::table_iv(), NamedWorkload::table_v()] {
        println!(
            "  {:<8} [synthetic]  u={:<5} |w|={}µs l={}µs",
            w.name, w.paper.unique_keys, w.window_us, w.lateness_us
        );
    }
    Ok(())
}

struct Flags {
    map: Vec<(String, String)>,
    bools: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = Vec::new();
        let mut bools = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    map.push((name.to_string(), it.next().expect("peeked").clone()));
                }
                _ => bools.push(name.to_string()),
            }
        }
        Ok(Flags { map, bools })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
        }
    }

    fn parse_dur(&self, name: &str) -> Result<Option<Duration>, String> {
        self.get(name).map(parse_duration).transpose()
    }
}

/// Parses a duration literal via the SQL lexer (`1s`, `20ms`, bare = ms).
fn parse_duration(text: &str) -> Result<Duration, String> {
    match oij_sql::lexer::tokenize(text) {
        Ok(tokens) => match tokens.as_slice() {
            [t] => match &t.kind {
                oij_sql::lexer::TokenKind::Duration(d) => Ok(*d),
                oij_sql::lexer::TokenKind::Number(ms) => Ok(Duration::from_millis(*ms)),
                _ => Err(format!("'{text}' is not a duration")),
            },
            _ => Err(format!("'{text}' is not a duration")),
        },
        Err(e) => Err(e.to_string()),
    }
}

fn build_query(flags: &Flags) -> Result<OijQuery, String> {
    let mut query = if let Some(sql) = flags.get("sql") {
        oij::sql::parse(sql)
            .and_then(|plan| plan.to_oij_query())
            .map_err(|e| e.to_string())?
    } else {
        let preceding = flags
            .parse_dur("preceding")?
            .ok_or("either --sql or --preceding is required")?;
        let agg =
            AggSpec::from_sql_name(flags.get("agg").unwrap_or("sum")).map_err(|e| e.to_string())?;
        OijQuery::builder()
            .preceding(preceding)
            .following(flags.parse_dur("following")?.unwrap_or(Duration::ZERO))
            .lateness(flags.parse_dur("lateness")?.unwrap_or(Duration::ZERO))
            .agg(agg)
            .build()
            .map_err(|e| e.to_string())?
    };
    match flags.get("emit") {
        None | Some("eager") => query.emit = EmitMode::Eager,
        Some("watermark") => query.emit = EmitMode::Watermark,
        Some(other) => return Err(format!("--emit: unknown mode '{other}'")),
    }
    Ok(query)
}

fn build_feed(flags: &Flags, default_disorder: Duration) -> Result<Vec<Event>, String> {
    if let Some(path) = flags.get("input") {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let reader = std::io::BufReader::new(file);
        // CSV traces by extension; the compact binary format otherwise.
        return if path.ends_with(".csv") {
            read_csv(reader).map_err(|e| e.to_string())
        } else {
            read_events(reader).map_err(|e| e.to_string())
        };
    }
    let key_dist = match flags.get("zipf") {
        None => KeyDist::Uniform,
        Some(v) => KeyDist::Zipf {
            exponent: v.parse().map_err(|_| format!("--zipf: bad value '{v}'"))?,
        },
    };
    Ok(SyntheticConfig {
        tuples: flags.parse_num("tuples", 200_000usize)?,
        unique_keys: flags.parse_num("keys", 100u64)?,
        key_dist,
        probe_fraction: flags.parse_num("probe", 0.5f64)?,
        spacing: Duration::from_micros(1),
        disorder: flags.parse_dur("disorder")?.unwrap_or(default_disorder),
        payload_bytes: flags.parse_num("payload", 0usize)?,
        seed: flags.parse_num("seed", 0xC11u64)?,
    }
    .generate())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = flags.get("out").ok_or("--out <file> is required")?;
    let events = build_feed(&flags, Duration::ZERO)?;
    let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
    let writer = std::io::BufWriter::new(file);
    if out.ends_with(".csv") {
        write_csv(writer, &events).map_err(|e| e.to_string())?;
    } else {
        write_events(writer, &events).map_err(|e| e.to_string())?;
    }
    println!("wrote {} events to {out}", events.len());
    Ok(())
}

/// The `oij serve` command: a long-running multi-query serving runtime
/// driven by a line protocol on stdin (see `HELP`). `FEED n` pumps `n`
/// deterministic synthetic events through the shared ingest so smoke
/// tests and demos need no external event source: event `i` has
/// `ts = i µs` (monotone), alternates probe/base, and cycles keys.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::io::BufRead;

    let flags = Flags::parse(args)?;
    let mut cfg = ServeConfig::new().with_budgets(
        flags.parse_num("max-queries", 64usize)?,
        flags.parse_num("max-joiners", 256usize)?,
        flags.parse_num("capacity", 1usize << 16)?,
    );
    cfg.default_joiners = flags.parse_num("joiners", 1usize)?;
    if let Some(label) = flags.get("index") {
        let backend = IndexBackend::from_label(label)
            .ok_or_else(|| format!("--index: unknown backend '{label}'"))?;
        cfg = cfg.with_index_backend(backend);
    }
    if flags.has("shed") {
        cfg = cfg.with_shedding();
    }
    let keys = flags.parse_num("keys", 16u64)?.max(1);
    let mut runtime = ServeRuntime::new(cfg).map_err(|e| e.to_string())?;
    let mut fed = 0u64;

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match (verb.to_ascii_uppercase().as_str(), rest.trim()) {
            ("", "") => {}
            ("QUIT", _) => break,
            // A literal `\n` splits lines, so `-- name: x` labels fit
            // the one-line protocol.
            ("REGISTER", sql) => {
                match runtime.register_sql(&sql.replace("\\n", "\n"), Sink::null()) {
                    Ok(id) => {
                        let name = runtime
                            .stats()
                            .into_iter()
                            .find(|q| q.id == id)
                            .and_then(|q| q.name);
                        match name {
                            Some(name) => println!("registered {id} ({name})"),
                            None => println!("registered {id}"),
                        }
                    }
                    Err(e) => println!("rejected: {e}"),
                }
            }
            ("CANCEL", target) => {
                let id = runtime.lookup(target).or_else(|| {
                    runtime
                        .stats()
                        .into_iter()
                        .map(|q| q.id)
                        .find(|id| id.to_string() == target || id.raw().to_string() == target)
                });
                match id {
                    None => println!("no such query '{target}'"),
                    Some(id) => match runtime.cancel(id) {
                        Ok(stats) => println!(
                            "cancelled {id}: results={} shed={}",
                            stats.results, stats.shed_events
                        ),
                        Err(e) => println!("cancelled {id} with failure: {e}"),
                    },
                }
            }
            ("STATS", _) => {
                let snap = runtime.snapshot();
                println!(
                    "active={} events={} probes={} retained={} evicted={}",
                    snap.active_queries,
                    snap.events,
                    snap.probe_inserts,
                    snap.retained,
                    snap.evicted
                );
                for q in runtime.stats() {
                    println!(
                        "  {} name={} joiners={} pushed={} shed={} {}",
                        q.id,
                        q.name.as_deref().unwrap_or("-"),
                        q.joiners,
                        q.pushed,
                        q.shed,
                        if q.failed { "FAILED" } else { "ok" }
                    );
                }
            }
            ("FEED", n) => {
                let n: u64 = n.parse().map_err(|_| format!("FEED: bad count '{n}'"))?;
                for i in fed..fed + n {
                    let side = if i % 2 == 0 { Side::Probe } else { Side::Base };
                    let tuple =
                        Tuple::new(Timestamp::from_micros(i as i64), i % keys, i as f64 * 0.5);
                    runtime
                        .push(Event::data(i, side, tuple))
                        .map_err(|e| e.to_string())?;
                }
                fed += n;
                println!("fed {n} events");
            }
            (other, _) => println!("unknown command '{other}' (REGISTER/CANCEL/STATS/FEED/QUIT)"),
        }
    }

    for (id, result) in runtime.finish() {
        match result {
            Ok(stats) => println!(
                "finished {id}: results={} shed={}",
                stats.results, stats.shed_events
            ),
            Err(e) => println!("finished {id} with failure: {e}"),
        }
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let query = build_query(&flags)?;
    let events = build_feed(&flags, query.window.lateness)?;
    let joiners = flags.parse_num("joiners", 4usize)?;
    let rate: Option<f64> = flags
        .get("rate")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "--rate: bad value".to_string())?;

    let mut cfg = EngineConfig::new(query, joiners).map_err(|e| e.to_string())?;
    cfg = cfg.with_batch_size(flags.parse_num("batch", 1usize)?);
    if flags.has("latency") {
        cfg = cfg.with_instrument(Instrumentation::latency());
    }
    if let Some(label) = flags.get("index") {
        let backend = IndexBackend::from_label(label)
            .ok_or_else(|| format!("--index: unknown backend '{label}'"))?;
        cfg = cfg.with_index_backend(backend);
    }
    let engine_name = flags.get("engine").unwrap_or("scale");
    let mut engine: Box<dyn OijEngine> = match engine_name {
        "scale" => Box::new(ScaleOij::spawn(cfg, Sink::null()).map_err(|e| e.to_string())?),
        "scale-noinc" => Box::new(
            ScaleOij::spawn(cfg.without_incremental(), Sink::null()).map_err(|e| e.to_string())?,
        ),
        "key" => Box::new(KeyOij::spawn(cfg, Sink::null()).map_err(|e| e.to_string())?),
        "splitjoin" => Box::new(SplitJoin::spawn(cfg, Sink::null()).map_err(|e| e.to_string())?),
        "openmldb" => {
            Box::new(OpenMldbBaseline::spawn(cfg, Sink::null()).map_err(|e| e.to_string())?)
        }
        other => return Err(format!("--engine: unknown engine '{other}'")),
    };

    let start = std::time::Instant::now();
    for (i, e) in events.iter().enumerate() {
        if let Some(rate) = rate {
            if i % 32 == 0 {
                let target = std::time::Duration::from_secs_f64(i as f64 / rate);
                let elapsed = start.elapsed();
                if elapsed < target {
                    std::thread::sleep(target - elapsed);
                }
            }
        }
        engine.push(e.clone()).map_err(|e| e.to_string())?;
    }
    let stats = engine.finish().map_err(|e| e.to_string())?;

    println!("engine          : {engine_name} ({joiners} joiners)");
    println!("input tuples    : {}", stats.input_tuples);
    println!("feature rows    : {}", stats.results);
    println!("throughput      : {:.0} tuples/s", stats.throughput);
    println!("unbalancedness  : {:.4}", stats.unbalancedness);
    println!("evicted tuples  : {}", stats.evicted);
    println!("late violations : {}", stats.late_violations);
    if stats.schedule_changes > 0 {
        println!("schedule changes: {}", stats.schedule_changes);
    }
    if stats.batch_occupancy.batches() > 0 {
        println!(
            "batch occupancy : mean {:.1} / max {} over {} batches",
            stats.batch_occupancy.mean(),
            stats.batch_occupancy.max(),
            stats.batch_occupancy.batches()
        );
    }
    if let Some(lat) = &stats.latency {
        println!(
            "latency p50/p95/p99/max: {:.3} / {:.3} / {:.3} / {:.3} ms",
            lat.quantile_ns(0.5) as f64 / 1e6,
            lat.quantile_ns(0.95) as f64 / 1e6,
            lat.quantile_ns(0.99) as f64 / 1e6,
            lat.max_ns() as f64 / 1e6,
        );
    }
    Ok(())
}
