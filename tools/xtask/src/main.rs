//! `cargo xtask` — workspace task runner.
//!
//! Subcommands:
//! - `unsafe-audit` — every `unsafe` site must carry a justification
//!   ([`xtask::audit`]).
//! - `lint` — the concurrency-protocol rules R1–R9 over the SWMR crates
//!   ([`xtask::lint`]); `--json` emits machine-readable diagnostics.
//! - `lockdep-check` — verify a runtime lockdep witness log against the
//!   declared `lint.toml [lockorder]` graph ([`xtask::lockdep`]).
//! - `proto-check` — verify a runtime protocol witness log against the
//!   declared `lint.toml [protocol]` grammar ([`xtask::proto`]).
//!
//! Both passes share the comment/string-aware scanner in
//! [`xtask::lexer`] and exit non-zero on any finding, so CI can gate on
//! them directly.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("unsafe-audit") => xtask::audit::unsafe_audit(),
        Some("lint") => xtask::lint::run(&args[1..]),
        Some("lockdep-check") => xtask::lockdep::check(&args[1..]),
        Some("proto-check") => xtask::proto::check(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <task>");
    eprintln!("tasks:");
    eprintln!("  unsafe-audit   check that every `unsafe` site carries a justification");
    eprintln!("  lint           run the concurrency-protocol rules (R1-R9, see lint.toml); --json for machine output");
    eprintln!(
        "  lockdep-check  verify an observed lockdep witness log against lint.toml [lockorder]"
    );
    eprintln!(
        "  proto-check    verify an observed protocol witness log against lint.toml [protocol]"
    );
}
