//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `unsafe-audit` — walks every `.rs` file in the workspace and fails if
//!   any `unsafe` block, `unsafe impl`, or `unsafe fn` lacks an adjacent
//!   justification: blocks and impls need a `// SAFETY:` comment on the
//!   same line or in the contiguous comment run directly above; `unsafe fn`
//!   declarations need a `# Safety` doc section (or a `SAFETY:` comment).
//!
//! The audit lexes each file just enough to ignore `unsafe` occurrences
//! inside comments, string/char literals, and identifiers such as
//! `unsafe_op_in_unsafe_fn`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("unsafe-audit") => unsafe_audit(),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!("available commands: unsafe-audit");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <command>");
            eprintln!("available commands: unsafe-audit");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // tools/xtask/Cargo.toml -> workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn unsafe_audit() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["src", "crates", "vendor", "tools", "benches", "tests"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut audited_sites = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("unsafe-audit: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        audited_sites += audit_file(rel, &text, &mut violations);
    }

    if violations.is_empty() {
        println!(
            "unsafe-audit: OK — {audited_sites} unsafe site(s) across {} file(s), all justified",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        let mut report = String::new();
        for v in &violations {
            let _ = writeln!(report, "{v}");
        }
        eprint!("{report}");
        eprintln!(
            "unsafe-audit: FAILED — {} unjustified unsafe site(s) (of {audited_sites} audited)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return, // optional top-level dirs may not exist
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// What follows the `unsafe` keyword at a site.
#[derive(Clone, Copy, PartialEq)]
enum SiteKind {
    /// `unsafe {` — an unsafe block (or unsafe expression body).
    Block,
    /// `unsafe fn` / `unsafe extern "C" fn` — a declaration whose contract
    /// belongs in a `# Safety` doc section.
    Fn,
    /// `unsafe impl` / `unsafe trait`.
    ImplOrTrait,
}

/// Audits one file; pushes violation strings and returns how many unsafe
/// sites were inspected.
fn audit_file(rel: &Path, text: &str, violations: &mut Vec<String>) -> usize {
    let masked = mask_non_code(text);
    let original_lines: Vec<&str> = text.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut sites = 0usize;

    for (idx, mline) in masked_lines.iter().enumerate() {
        for col in keyword_positions(mline, "unsafe") {
            sites += 1;
            let kind = classify(&masked_lines, idx, col + "unsafe".len());
            let lineno = idx + 1;
            match kind {
                SiteKind::Block | SiteKind::ImplOrTrait => {
                    if !has_safety_comment(&original_lines, idx) {
                        let what = if kind == SiteKind::Block {
                            "unsafe block"
                        } else {
                            "unsafe impl/trait"
                        };
                        violations.push(format!(
                            "{}:{lineno}: {what} without an adjacent `// SAFETY:` comment",
                            rel.display()
                        ));
                    }
                }
                SiteKind::Fn => {
                    if !has_safety_doc(&original_lines, idx) {
                        violations.push(format!(
                            "{}:{lineno}: unsafe fn without a `# Safety` doc section",
                            rel.display()
                        ));
                    }
                }
            }
        }
    }
    sites
}

/// Byte offsets of `word` in `line` at identifier boundaries.
fn keyword_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            out.push(start);
        }
        from = end;
    }
    out
}

/// Looks at the first token after the `unsafe` keyword (possibly on a
/// later line) to decide what kind of site this is.
fn classify(masked_lines: &[&str], line: usize, col: usize) -> SiteKind {
    let mut rest = masked_lines[line][col..].to_string();
    // Pull in following lines until we see a meaningful token.
    let mut next = line + 1;
    while rest.trim().is_empty() && next < masked_lines.len() {
        rest = masked_lines[next].to_string();
        next += 1;
    }
    let trimmed = rest.trim_start();
    if trimmed.starts_with("fn") || trimmed.starts_with("extern") || trimmed.starts_with("async") {
        SiteKind::Fn
    } else if trimmed.starts_with("impl") || trimmed.starts_with("trait") {
        SiteKind::ImplOrTrait
    } else {
        SiteKind::Block
    }
}

/// True if the site's own line or the contiguous run of comment/attribute
/// lines directly above it contains `SAFETY:`.
fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.starts_with("*") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// True if the contiguous doc-comment/attribute run above an `unsafe fn`
/// contains a `# Safety` section (a plain `SAFETY:` comment also counts).
fn has_safety_doc(lines: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.starts_with("*") {
            if t.contains("# Safety") || t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Replaces the contents of comments and string/char literals with spaces
/// so keyword scanning only sees real code. Newlines are preserved so line
/// numbers stay aligned with the original.
fn mask_non_code(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Raw string r"..." / r#"..."# (also after a b prefix,
                    // which the Code arm passes through harmlessly).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char/byte literal vs lifetime: a literal closes with a
                    // quote one or two (escaped) chars ahead.
                    let is_char_lit =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char_lit {
                        st = St::Char;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_and_literals() {
        let src = "let x = \"unsafe\"; // unsafe here\nlet y = 'u';\n/* unsafe */ let z = 1;\n";
        let masked = mask_non_code(src);
        assert!(!masked.contains("unsafe"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn keyword_positions_respect_identifier_boundaries() {
        assert_eq!(keyword_positions("unsafe {", "unsafe"), vec![0]);
        assert!(keyword_positions("unsafe_op_in_unsafe_fn", "unsafe").is_empty());
        assert_eq!(keyword_positions("x unsafe fn", "unsafe"), vec![2]);
    }

    #[test]
    fn audit_flags_missing_and_accepts_present() {
        let bad = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let mut v = Vec::new();
        let n = audit_file(Path::new("t.rs"), bad, &mut v);
        assert_eq!(n, 1);
        assert_eq!(v.len(), 1);

        let good = "fn f() {\n    // SAFETY: provably unreachable.\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        v.clear();
        audit_file(Path::new("t.rs"), good, &mut v);
        assert!(v.is_empty());

        let good_fn = "/// Does things.\n///\n/// # Safety\n/// Caller must uphold X.\npub unsafe fn g() {}\n";
        v.clear();
        audit_file(Path::new("t.rs"), good_fn, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn impls_need_safety_comments_too() {
        let bad = "unsafe impl Send for Foo {}\n";
        let mut v = Vec::new();
        audit_file(Path::new("t.rs"), bad, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("impl"));

        let good = "// SAFETY: Foo owns no thread-affine state.\nunsafe impl Send for Foo {}\n";
        v.clear();
        audit_file(Path::new("t.rs"), good, &mut v);
        assert!(v.is_empty());
    }
}
