//! `cargo xtask proto-check` — observed-vs-declared message-protocol audit.
//!
//! The runtime protocol witness (`oij_common::protowit`, enabled with
//! `RUSTFLAGS="--cfg protowit"`) appends every first-observed channel,
//! per-symbol send, and finish to the file named by `OIJ_PROTO_LOG`:
//!
//! ```text
//! channel driver-joiner crates/core/src/instrument.rs:40:9
//! send driver-joiner data crates/core/src/keyoij.rs:310:21
//! finish driver-joiner crates/core/src/keyoij.rs:349:29
//! ```
//!
//! This pass closes the loop with the static side (R8): every observed
//! channel must name a declared `lint.toml [protocol]` edge, and every
//! observed symbol must be in that edge's declared automaton alphabet
//! (hard errors — the declaration is stale or the code sent a message
//! the protocol review never saw). Declared edges or symbols that were
//! never observed are warnings only: a unit-test run does not exercise
//! every engine, so absence is not evidence of staleness. Ordering
//! violations (heartbeat regression, send-after-finish, unmarked
//! delivery) never reach the log — the witness panics at the first one,
//! so the suite itself goes red.
//!
//! An **empty or missing log is a hard error**: it means the suite ran
//! without the witness compiled in, and a vacuous pass must not turn the
//! CI gate green.

use std::process::ExitCode;

use crate::lint::config::Config;
use crate::obslog;
use crate::workspace_root;

/// The protocol witness's record schema: `channel <edge> <site>`,
/// `send <edge> <symbol> <site>`, `finish <edge> <site>`.
const SCHEMA: [(&str, usize); 3] = [("channel", 2), ("send", 3), ("finish", 2)];

/// Parsed witness log, deduplicated keep-first (every test binary
/// appends its own first observations).
struct ObservedProtocol {
    /// `(edge, first construction site)`.
    channels: Vec<(String, String)>,
    /// `(edge, symbol, first send site)` — `finish` records fold in as
    /// symbol `finish`, matching the declared alphabet.
    sends: Vec<(String, String, String)>,
}

fn parse_log(text: &str) -> Result<ObservedProtocol, String> {
    let records = obslog::parse_records(text, &SCHEMA)?;
    let records = obslog::dedup_keep_first(records, |r| match r.kind.as_str() {
        "send" => vec![
            "send".to_string(),
            r.field(0).to_string(),
            r.field(1).to_string(),
        ],
        kind => vec![kind.to_string(), r.field(0).to_string()],
    });
    let mut obs = ObservedProtocol {
        channels: Vec::new(),
        sends: Vec::new(),
    };
    for r in records {
        match r.kind.as_str() {
            "channel" => obs
                .channels
                .push((r.field(0).to_string(), r.field(1).to_string())),
            "send" => obs.sends.push((
                r.field(0).to_string(),
                r.field(1).to_string(),
                r.field(2).to_string(),
            )),
            _ => obs.sends.push((
                r.field(0).to_string(),
                "finish".to_string(),
                r.field(1).to_string(),
            )),
        }
    }
    Ok(obs)
}

/// Pure core of the check, returning the error/warning report so the
/// test suite can drive it without touching the filesystem.
fn audit(obs: &ObservedProtocol, cfg: &Config) -> (Vec<String>, Vec<String>) {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();

    for (edge, site) in &obs.channels {
        if cfg.proto_edge(edge).is_none() {
            errors.push(format!(
                "observed channel `{edge}` (first constructed at {site}) is not declared \
                 in lint.toml [protocol] edges"
            ));
        }
    }
    for (edge, sym, site) in &obs.sends {
        if cfg.proto_edge(edge).is_none() {
            errors.push(format!(
                "observed `{sym}` send on undeclared edge `{edge}` (first sent at {site}) — \
                 not in lint.toml [protocol] edges"
            ));
            continue;
        }
        if !cfg
            .proto_transitions
            .iter()
            .any(|t| t.edge == *edge && t.sym == *sym)
        {
            errors.push(format!(
                "observed `{sym}` send on edge `{edge}` (first sent at {site}) has no \
                 `--{sym}-->` transition in the declared lint.toml [protocol] automaton"
            ));
        }
    }

    let declared_edges: Vec<String> = cfg.proto_edges.iter().map(|e| e.name.clone()).collect();
    for edge in obslog::unobserved_declared(&declared_edges, |e| {
        obs.channels.iter().any(|(c, _)| c == e)
    }) {
        warnings.push(format!(
            "declared protocol edge `{edge}` was never observed this run (stale \
             declaration, or a code path the suite did not exercise)"
        ));
    }
    // Distinct declared (edge, symbol) pairs — two transitions may share
    // a symbol (different states), which is still one coverage question.
    let mut declared_syms: Vec<(String, String)> = Vec::new();
    for t in &cfg.proto_transitions {
        let pair = (t.edge.clone(), t.sym.clone());
        if !declared_syms.contains(&pair) {
            declared_syms.push(pair);
        }
    }
    for (edge, sym) in declared_syms {
        if !obs.sends.iter().any(|(e, s, _)| *e == edge && *s == sym) {
            warnings.push(format!(
                "declared `{sym}` send on edge `{edge}` was never observed this run (stale \
                 transition, or a code path the suite did not exercise)"
            ));
        }
    }
    (errors, warnings)
}

/// CLI entry point: `cargo xtask proto-check <witness-log>`.
pub fn check(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: cargo xtask proto-check <witness-log>");
        return ExitCode::FAILURE;
    };

    let root = workspace_root();
    let cfg_text = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("proto-check: cannot read lint.toml: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match Config::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("proto-check: {e}");
            return ExitCode::FAILURE;
        }
    };

    let log = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "proto-check: cannot read witness log {path}: {e}\n  \
                 (run the suite with RUSTFLAGS=\"--cfg protowit\" and OIJ_PROTO_LOG={path})"
            );
            return ExitCode::FAILURE;
        }
    };
    let obs = match parse_log(&log) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("proto-check: malformed witness log {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if obs.channels.is_empty() {
        eprintln!(
            "proto-check: witness log {path} records no channels — the suite ran without \
             the witness compiled in (RUSTFLAGS=\"--cfg protowit\"); refusing a vacuous pass"
        );
        return ExitCode::FAILURE;
    }

    let (errors, warnings) = audit(&obs, &cfg);
    for w in &warnings {
        eprintln!("warning[proto-stale]: {w}\n");
    }
    for e in &errors {
        eprintln!("error[proto-undeclared]: {e}\n");
    }
    if errors.is_empty() {
        println!(
            "proto-check: OK — {} observed channel(s), {} observed send symbol(s), all \
             within the declared [protocol] grammar ({} stale-declaration warning(s))",
            obs.channels.len(),
            obs.sends.len(),
            warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "proto-check: FAILED — {} observed fact(s) outside the declared [protocol] \
             grammar",
            errors.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::parse(
            r#"
[scope]
src = []

[topology]
workers = ["driver", "joiner"]
edges = ["driver -> joiner : bounded"]

[protocol]
edges = ["dj = driver -> joiner"]
transitions = [
    "dj : stream --data--> stream",
    "dj : stream --heartbeat--> stream",
    "dj : stream --finish--> closed",
]
"#,
        )
        .expect("test config parses")
    }

    #[test]
    fn observed_subset_of_declared_passes() {
        let obs = parse_log(
            "channel dj s:1:1\nsend dj data s:2:2\nsend dj heartbeat s:3:3\nfinish dj s:4:4\n",
        )
        .unwrap();
        let (errors, warnings) = audit(&obs, &cfg());
        assert!(errors.is_empty(), "{errors:?}");
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn undeclared_edge_and_symbol_are_errors() {
        let obs = parse_log(
            "channel zz s:1:1\nsend zz data s:2:2\nchannel dj s:3:3\nsend dj batch s:4:4\n",
        )
        .unwrap();
        let (errors, _) = audit(&obs, &cfg());
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors[0].contains("`zz`"), "{errors:?}");
        assert!(errors[1].contains("undeclared edge `zz`"), "{errors:?}");
        assert!(
            errors[2].contains("`batch` send on edge `dj`"),
            "{errors:?}"
        );
    }

    #[test]
    fn unexercised_declarations_warn_without_failing() {
        let obs = parse_log("channel dj s:1:1\nsend dj data s:2:2\n").unwrap();
        let (errors, warnings) = audit(&obs, &cfg());
        assert!(errors.is_empty(), "{errors:?}");
        // heartbeat and finish transitions were declared but not seen.
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings.iter().any(|w| w.contains("`heartbeat`")));
        assert!(warnings.iter().any(|w| w.contains("`finish`")));
    }

    #[test]
    fn duplicate_observations_keep_the_first_site() {
        let obs = parse_log("channel dj first:1:1\nchannel dj second:2:2\n").unwrap();
        assert_eq!(obs.channels.len(), 1);
        assert_eq!(obs.channels[0].1, "first:1:1");
    }

    #[test]
    fn malformed_log_lines_are_rejected() {
        assert!(parse_log("channel only_one\n").is_err());
        assert!(parse_log("send dj data\n").is_err());
        assert!(parse_log("deliver dj s:1:1\n").is_err());
        assert!(parse_log("\n \n").unwrap().channels.is_empty());
    }
}
