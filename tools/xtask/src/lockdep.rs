//! `cargo xtask lockdep-check` — observed-vs-declared lock-graph audit.
//!
//! The runtime lockdep witness (`oij_common::lockdep`, enabled with
//! `RUSTFLAGS="--cfg lockdep"`) appends every first-observed lock class
//! and nesting edge to the file named by `OIJ_LOCKDEP_LOG`:
//!
//! ```text
//! class sink_collect crates/core/src/sink.rs:67:17
//! edge failure_slot sink_collect <site-a> <site-b>
//! ```
//!
//! This pass closes the loop with the static side: every observed class
//! must be declared in `lint.toml [lockorder] classes`, and every
//! observed edge must be permitted by the declared partial order (hard
//! errors — the declaration is stale or the code acquired a lock the
//! protocol review never saw). Declared classes that were never observed
//! are reported as warnings only: a unit-test run does not exercise every
//! engine, so absence is not evidence of staleness.
//!
//! An **empty or missing log is a hard error**: it means the suite ran
//! without the witness compiled in, and a vacuous pass must not turn the
//! CI gate green.

use std::process::ExitCode;

use crate::lint::config::Config;
use crate::obslog;
use crate::workspace_root;

/// The lockdep witness's record schema: `class <name> <site>` and
/// `edge <from> <to> <from-site> <to-site>`.
const SCHEMA: [(&str, usize); 2] = [("class", 2), ("edge", 4)];

/// One `edge` line from the witness log.
struct ObservedEdge {
    from: String,
    to: String,
    from_site: String,
    to_site: String,
}

/// Parsed witness log: the classes and nesting edges one run observed.
struct ObservedGraph {
    classes: Vec<(String, String)>,
    edges: Vec<ObservedEdge>,
}

/// Parses the `class`/`edge` line format via the shared [`obslog`]
/// framing; unknown line shapes are errors (a corrupt log must not
/// silently verify). Each test binary in a workspace run appends its own
/// first observations, so the same class/edge may repeat; the first
/// observation site wins.
fn parse_log(text: &str) -> Result<ObservedGraph, String> {
    let records = obslog::parse_records(text, &SCHEMA)?;
    let records = obslog::dedup_keep_first(records, |r| match r.kind.as_str() {
        "class" => vec!["class".to_string(), r.field(0).to_string()],
        _ => vec![
            "edge".to_string(),
            r.field(0).to_string(),
            r.field(1).to_string(),
        ],
    });
    let mut graph = ObservedGraph {
        classes: Vec::new(),
        edges: Vec::new(),
    };
    for r in records {
        match r.kind.as_str() {
            "class" => graph
                .classes
                .push((r.field(0).to_string(), r.field(1).to_string())),
            _ => graph.edges.push(ObservedEdge {
                from: r.field(0).to_string(),
                to: r.field(1).to_string(),
                from_site: r.field(2).to_string(),
                to_site: r.field(3).to_string(),
            }),
        }
    }
    Ok(graph)
}

/// Pure core of the check, returning the error/warning report so the
/// test suite can drive it without touching the filesystem.
fn audit(graph: &ObservedGraph, cfg: &Config) -> (Vec<String>, Vec<String>) {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();

    for (class, site) in &graph.classes {
        if !cfg.lock_classes.contains(class) {
            errors.push(format!(
                "observed lock class `{class}` (first acquired at {site}) is not declared \
                 in lint.toml [lockorder] classes"
            ));
        }
    }
    for e in &graph.edges {
        if !cfg.lock_order_allows(&e.from, &e.to) {
            errors.push(format!(
                "observed nesting `{} -> {}` (held at {}, acquired at {}) is not permitted \
                 by the declared lint.toml [lockorder] order",
                e.from, e.to, e.from_site, e.to_site
            ));
        }
    }
    for class in obslog::unobserved_declared(&cfg.lock_classes, |c| {
        graph.classes.iter().any(|(n, _)| n == c)
    }) {
        warnings.push(format!(
            "declared lock class `{class}` was never observed this run (stale \
             declaration, or a code path the suite did not exercise)"
        ));
    }
    (errors, warnings)
}

/// CLI entry point: `cargo xtask lockdep-check <witness-log>`.
pub fn check(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: cargo xtask lockdep-check <witness-log>");
        return ExitCode::FAILURE;
    };

    let root = workspace_root();
    let cfg_text = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lockdep-check: cannot read lint.toml: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match Config::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lockdep-check: {e}");
            return ExitCode::FAILURE;
        }
    };

    let log = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "lockdep-check: cannot read witness log {path}: {e}\n  \
                 (run the suite with RUSTFLAGS=\"--cfg lockdep\" and OIJ_LOCKDEP_LOG={path})"
            );
            return ExitCode::FAILURE;
        }
    };
    let graph = match parse_log(&log) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("lockdep-check: malformed witness log {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if graph.classes.is_empty() {
        eprintln!(
            "lockdep-check: witness log {path} records no acquisitions — the suite ran \
             without the witness compiled in (RUSTFLAGS=\"--cfg lockdep\"); refusing a \
             vacuous pass"
        );
        return ExitCode::FAILURE;
    }

    let (errors, warnings) = audit(&graph, &cfg);
    for w in &warnings {
        eprintln!("warning[lockdep-stale]: {w}\n");
    }
    for e in &errors {
        eprintln!("error[lockdep-undeclared]: {e}\n");
    }
    if errors.is_empty() {
        println!(
            "lockdep-check: OK — {} observed class(es), {} observed edge(s), all within \
             the declared [lockorder] graph ({} stale-declaration warning(s))",
            graph.classes.len(),
            graph.edges.len(),
            warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lockdep-check: FAILED — {} observed fact(s) outside the declared [lockorder] \
             graph",
            errors.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(extra: &str) -> Config {
        let text = format!(
            "[scope]\nsrc = []\n[lockorder]\nclasses = [\"a\", \"b\", \"c\"]\n\
             order = [\"a -> b\"]\n{extra}"
        );
        Config::parse(&text).expect("test config parses")
    }

    #[test]
    fn observed_subset_of_declared_passes() {
        let graph = parse_log(
            "class a src/x.rs:1:1\nclass b src/y.rs:2:2\nedge a b src/x.rs:1:1 src/y.rs:2:2\n",
        )
        .unwrap();
        let (errors, warnings) = audit(&graph, &cfg(""));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(
            warnings.len(),
            1,
            "declared-but-unobserved `c`: {warnings:?}"
        );
        assert!(warnings[0].contains('c'));
    }

    #[test]
    fn undeclared_class_and_edge_are_errors() {
        let graph = parse_log(
            "class z src/z.rs:9:9\nclass b src/y.rs:2:2\nedge b a src/y.rs:2:2 src/x.rs:1:1\n",
        )
        .unwrap();
        let (errors, _) = audit(&graph, &cfg(""));
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("`z`"));
        assert!(errors[1].contains("b -> a"));
    }

    #[test]
    fn transitive_declared_order_admits_observed_shortcut_edges() {
        let text = "[scope]\nsrc = []\n[lockorder]\nclasses = [\"a\", \"b\", \"c\"]\n\
                    order = [\"a -> b\", \"b -> c\"]\n";
        let cfg = Config::parse(text).unwrap();
        let graph = parse_log("class a s:1:1\nclass c s:3:3\nedge a c s:1:1 s:3:3\n").unwrap();
        let (errors, _) = audit(&graph, &cfg);
        assert!(
            errors.is_empty(),
            "a -> c is within the closure: {errors:?}"
        );
    }

    #[test]
    fn malformed_log_lines_are_rejected() {
        assert!(parse_log("class only_two\n").is_err());
        assert!(parse_log("edge a b onesite\n").is_err());
        assert!(parse_log("acquired a b\n").is_err());
        assert!(parse_log("\n  \n").unwrap().classes.is_empty());
    }
}
