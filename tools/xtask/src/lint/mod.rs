//! The concurrency-protocol lint engine (`cargo xtask lint`).
//!
//! A workspace-local static analysis pass over the token stream produced
//! by [`crate::lexer`]: a registry of domain rules checks that the SWMR
//! publication protocol's conventions hold everywhere, every time, instead
//! of being rediscovered per review. The rules (see [`rules`]):
//!
//! | id | name | invariant |
//! |----|------|-----------|
//! | R1 | `ordering-justification` | every atomic `Ordering::*` call site carries an `// ORDERING:` comment naming its pairing site |
//! | R2 | `facade-only-sync` | loom-verified crates import atomics/locks only through their `sync.rs` facade |
//! | R3 | `hot-path-panic` | no `unwrap`/`expect`/`panic!`/`todo!`/slice-index in `//! lint: hot_path` modules without `// PANIC-OK:` |
//! | R4 | `hot-path-blocking` | no lock acquisition, sleeps, or blocking channel ops in `hot_path` modules without `// BLOCKING-OK:` |
//! | R5 | `loom-coverage` | every public atomic-owning type is named in a loom model (or allowlisted as uncovered) |
//! | R6 | `lock-order` | every lock acquisition carries `// LOCK: <class>` and lexical nesting respects the `[lockorder]` partial order |
//! | R7 | `channel-topology` | every channel construction carries `// CHANNEL: <src> -> <dst>` naming a declared `[topology]` edge; raw sends need `// SEND-OK:`; the declared bounded subgraph is acyclic |
//! | R8 | `message-protocol` | every `Msg`-constructing send site carries `// PROTO: <edge>.<state>` naming a reachable state of the declared `[protocol]` automaton; no same-edge sends after a `Finish` tag in a function |
//! | R9 | `stamp-discipline` | ordering-sentinel calls (`mark_emitted`, `record_event`, tracker `observe`) carry `// STAMP: <pair>.{pre,post}` naming a declared `[stamps]` pair, with pre lexically dominating post in its function |
//!
//! Scope and per-rule suppressions live in `lint.toml` at the workspace
//! root ([`config`]); diagnostics are rustc-style (`error[R1]: ...` with a
//! `-->` location and a `help:` suggestion). Test modules
//! (`#[cfg(test)]`) and integration-test trees are exempt from R1–R4:
//! the protocol rules protect production hot paths, and tests
//! deliberately use raw primitives, panics, and blocking calls.

pub mod config;
pub mod rules;

use std::fmt;
use std::process::ExitCode;

use crate::lexer::SourceFile;
use crate::{collect_rs_files, workspace_root};
use config::Config;
use rules::registry;

/// One lint finding, addressed by (rule, file, line) and matched against
/// allowlist entries by (rule, file, subject).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule id (`R1`..`R9`).
    pub rule: &'static str,
    /// Human-readable rule name (`ordering-justification`, ...).
    pub name: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched — an ordering token, an import path, a type name.
    /// Allowlist `subject` fields match against this.
    pub subject: String,
    /// One-sentence statement of the violation.
    pub message: String,
    /// Rustc-style `help:` suggestion.
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}/{}]: {}", self.rule, self.name, self.message)?;
        writeln!(f, "  --> {}:{}", self.file, self.line)?;
        write!(f, "   = help: {}", self.help)
    }
}

/// A registered lint rule. Rules see the whole workspace at once so
/// cross-file rules (R5's model-coverage audit) fit the same interface as
/// per-file token scans.
pub trait Rule {
    /// Stable id used in diagnostics and `lint.toml` (`"R1"`).
    fn id(&self) -> &'static str;
    /// Short kebab-case name (`"ordering-justification"`).
    fn name(&self) -> &'static str;
    /// Scans `files` and appends findings to `out`.
    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// Outcome of [`check_files`]: surviving diagnostics plus bookkeeping on
/// how the allowlist was used.
pub struct LintOutcome {
    /// Diagnostics not suppressed by any allowlist entry.
    pub diagnostics: Vec<Diagnostic>,
    /// How many diagnostics each allowlist entry suppressed (parallel to
    /// `Config::allow`). An entry with 0 uses is stale and fails the run.
    pub allow_uses: Vec<usize>,
}

impl LintOutcome {
    /// Indices of allowlist entries that suppressed nothing.
    pub fn stale_allows(&self) -> Vec<usize> {
        self.allow_uses
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| (n == 0).then_some(i))
            .collect()
    }
}

/// Runs every registered rule over already-parsed files and applies the
/// allowlist. This is the engine's pure core — the CLI feeds it the real
/// tree, the test suite feeds it fixtures.
pub fn check_files(files: &[SourceFile], cfg: &Config) -> LintOutcome {
    let mut raw = Vec::new();
    for rule in registry() {
        rule.check(files, cfg, &mut raw);
    }
    raw.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let mut allow_uses = vec![0usize; cfg.allow.len()];
    let diagnostics = raw
        .into_iter()
        .filter(|d| {
            let mut suppressed = false;
            for (i, e) in cfg.allow.iter().enumerate() {
                if e.rule == d.rule
                    && e.file == d.file
                    && (e.subject.is_empty() || d.subject.contains(&e.subject))
                {
                    allow_uses[i] += 1;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    LintOutcome {
        diagnostics,
        allow_uses,
    }
}

/// Escapes `s` for embedding in a JSON string literal. Hand-rolled —
/// xtask is dependency-free by policy, and lint diagnostics only need
/// the mandatory escapes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics (and stale-allow findings, as pseudo-rule
/// `stale-allow`) as a JSON array for CI annotation tooling. Each item
/// carries a `span` — the `{"byte_start": s, "byte_end": e}` extent of
/// the diagnosed line in the file's original bytes — or `null` when the
/// diagnostic anchors to a file the engine did not parse (lint.toml's
/// declaration lines, stale allows). The schema is pinned by a fixture
/// test; changing a key or the span shape is a breaking change for the
/// CI artifact consumers.
pub fn render_json(outcome: &LintOutcome, cfg: &Config, files: &[SourceFile]) -> String {
    let span_of = |file: &str, line: usize| -> String {
        files
            .iter()
            .find(|f| f.rel == file)
            .and_then(|f| f.line_span(line))
            .map(|(s, e)| format!("{{\"byte_start\": {s}, \"byte_end\": {e}}}"))
            .unwrap_or_else(|| "null".to_string())
    };
    let mut items = Vec::new();
    for d in &outcome.diagnostics {
        items.push(format!(
            "  {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"span\": {}, \"subject\": \"{}\", \"message\": \"{}\", \"help\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(d.name),
            json_escape(&d.file),
            d.line,
            span_of(&d.file, d.line),
            json_escape(&d.subject),
            json_escape(&d.message),
            json_escape(&d.help),
        ));
    }
    for i in outcome.stale_allows() {
        let e = &cfg.allow[i];
        items.push(format!(
            "  {{\"rule\": \"stale-allow\", \"name\": \"stale-allow\", \"file\": \"lint.toml\", \
             \"line\": 0, \"span\": null, \"subject\": \"{}\", \"message\": \"[[allow]] entry \
             #{} ({} in {}) suppressed nothing — remove it\", \"help\": \"remove the stale \
             entry\"}}",
            json_escape(&e.subject),
            i + 1,
            json_escape(&e.rule),
            json_escape(&e.file),
        ));
    }
    format!("[\n{}\n]", items.join(",\n"))
}

/// CLI entry point: loads `lint.toml`, parses every file the config puts
/// in scope, runs the registry, prints diagnostics, and sets the exit
/// code. Stale allowlist entries are hard errors. With `--json` the
/// findings go to stdout as a JSON array instead of rustc-style text.
pub fn run(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    if let Some(bad) = args.iter().find(|a| *a != "--json") {
        eprintln!("lint: unknown option `{bad}` (supported: --json)");
        return ExitCode::FAILURE;
    }
    let root = workspace_root();
    let cfg_path = root.join("lint.toml");
    let cfg_text = match std::fs::read_to_string(&cfg_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint: cannot read {}: {e}", cfg_path.display());
            return ExitCode::FAILURE;
        }
    };
    let cfg = match Config::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse every file any rule can look at: the scoped source dirs, the
    // loom-audited dirs, and the model files themselves.
    let mut paths = Vec::new();
    for dir in cfg
        .scope_src
        .iter()
        .chain(cfg.loom_crates.iter())
        .map(String::as_str)
    {
        collect_rs_files(&root.join(dir), &mut paths);
    }
    for model in &cfg.loom_models {
        let p = root.join(model);
        if p.is_file() {
            paths.push(p);
        } else {
            eprintln!("lint: loom model file {model} does not exist");
            return ExitCode::FAILURE;
        }
    }
    paths.sort();
    paths.dedup();

    let mut files = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(&rel, &text));
    }

    let outcome = check_files(&files, &cfg);
    let mut failed = false;
    if json {
        println!("{}", render_json(&outcome, &cfg, &files));
        failed = !outcome.diagnostics.is_empty() || !outcome.stale_allows().is_empty();
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for d in &outcome.diagnostics {
        eprintln!("{d}\n");
        failed = true;
    }
    for i in outcome.stale_allows() {
        let e = &cfg.allow[i];
        eprintln!(
            "error[stale-allow]: lint.toml [[allow]] entry #{} ({} in {}{}) suppressed \
             nothing — remove it\n",
            i + 1,
            e.rule,
            e.file,
            if e.subject.is_empty() {
                String::new()
            } else {
                format!(", subject `{}`", e.subject)
            }
        );
        failed = true;
    }
    let suppressed: usize = outcome.allow_uses.iter().sum();
    if failed {
        eprintln!(
            "lint: FAILED — {} violation(s) across {} file(s) ({} suppressed by lint.toml)",
            outcome.diagnostics.len(),
            files.len(),
            suppressed
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lint: OK — {} file(s) clean under rules {} ({} finding(s) suppressed by lint.toml)",
            files.len(),
            registry()
                .iter()
                .map(|r| r.id())
                .collect::<Vec<_>>()
                .join("/"),
            suppressed
        );
        ExitCode::SUCCESS
    }
}
