//! R1 `ordering-justification`: every atomic memory-ordering call site
//! must carry an `// ORDERING:` comment naming the site it pairs with.
//!
//! The SWMR protocol (DESIGN.md §3) is a web of Release stores publishing
//! to Acquire loads; an ordering constant with no stated pairing is either
//! dead weight (too strong) or a latent race (too weak). The rule matches
//! the variant tokens (`::Relaxed`, `::Acquire`, `::Release`, `::AcqRel`,
//! `::SeqCst`) rather than the `Ordering::` prefix so call sites that
//! alias the enum (`use Ordering as O; ... O::AcqRel`) are still seen.
//! `use` declarations and `#[cfg(test)]` code are exempt; one diagnostic
//! is emitted per offending line regardless of how many orderings it
//! names (a `compare_exchange` carries two, but wants one comment).

use crate::lexer::SourceFile;
use crate::lint::config::Config;
use crate::lint::{Diagnostic, Rule};

const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub struct OrderingJustification;

impl Rule for OrderingJustification {
    fn id(&self) -> &'static str {
        "R1"
    }
    fn name(&self) -> &'static str {
        "ordering-justification"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        for file in files.iter().filter(|f| f.under_any(&cfg.scope_src)) {
            for (idx, mline) in file.masked_lines.iter().enumerate() {
                if file.in_test[idx] || mline.trim_start().starts_with("use ") {
                    continue;
                }
                let found: Vec<&str> = VARIANTS
                    .iter()
                    .copied()
                    .filter(|v| ordering_variant_on(mline, v))
                    .collect();
                if found.is_empty() || file.marker_near(idx, "ORDERING:") {
                    continue;
                }
                let subject = found
                    .iter()
                    .map(|v| format!("Ordering::{v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: file.rel.clone(),
                    line: idx + 1,
                    subject: subject.clone(),
                    message: format!("{subject} used without an `// ORDERING:` justification"),
                    help: "add `// ORDERING: <why this strength; pairs with <site>>` on this \
                           line or directly above"
                        .to_string(),
                });
            }
        }
    }
}

/// True if the masked line contains `::<variant>` with nothing
/// identifier-like after the variant (so `::Acquired` would not match).
fn ordering_variant_on(mline: &str, variant: &str) -> bool {
    let needle = format!("::{variant}");
    let bytes = mline.as_bytes();
    let mut from = 0;
    while let Some(pos) = mline[from..].find(&needle) {
        let start = from + pos;
        let end = start + needle.len();
        if end >= bytes.len() || !crate::lexer::is_ident_byte(bytes[end]) {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_aliased_paths_but_not_longer_idents() {
        assert!(ordering_variant_on("x.load(Ordering::Acquire)", "Acquire"));
        assert!(ordering_variant_on("x.swap(true, O::AcqRel)", "AcqRel"));
        assert!(!ordering_variant_on("foo::AcquireToken", "Acquire"));
        assert!(!ordering_variant_on("x.load(ord)", "Acquire"));
    }
}
