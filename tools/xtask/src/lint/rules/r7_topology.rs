//! R7 `channel-topology`: every channel construction names a declared
//! worker→worker edge, raw sends are justified, and the declared bounded
//! subgraph is cycle-free.
//!
//! Bounded channels deadlock exactly like locks: a cycle of workers each
//! blocked sending into the next's full queue. `lint.toml [topology]`
//! declares the worker graph; this rule keeps code and declaration in
//! sync from both sides. Per site: (1) every `bounded(..)` /
//! `unbounded(..)` construction carries `// CHANNEL: <src> -> <dst>`
//! naming a declared edge whose boundedness matches the constructor;
//! (2) every raw `.send(..)` / `.send_timeout(..)` carries
//! `// SEND-OK: <why>` — the blessed path is `send_guarded`, which
//! bounds the wait and watches the kill flag. Per graph: a cycle among
//! the *declared bounded* edges is an error anchored at the `edges` line
//! of lint.toml, and a declared edge no construction site names is a
//! stale declaration (mirroring the stale-allow discipline).
//! `#[cfg(test)]` code is exempt.

use crate::lexer::{keyword_positions, SourceFile};
use crate::lint::config::{find_cycle, Config};
use crate::lint::rules::has_method_call;
use crate::lint::{Diagnostic, Rule};

pub struct ChannelTopology;

impl Rule for ChannelTopology {
    fn id(&self) -> &'static str {
        "R7"
    }
    fn name(&self) -> &'static str {
        "channel-topology"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        // No declared workers = topology checking not adopted; stay inert.
        if cfg.topo_workers.is_empty() {
            return;
        }
        // Which declared edges some `// CHANNEL:` tag actually names.
        let mut edge_used = vec![false; cfg.topo_edges.len()];
        for file in files.iter().filter(|f| f.under_any(&cfg.scope_src)) {
            for (idx, mline) in file.masked_lines.iter().enumerate() {
                if file.in_test[idx] {
                    continue;
                }
                if let Some(bounded) = channel_ctor(mline) {
                    self.check_ctor(file, cfg, idx, bounded, &mut edge_used, out);
                }
                if let Some(what) = raw_send(mline) {
                    if !file.marker_near(idx, "SEND-OK:") {
                        out.push(Diagnostic {
                            rule: self.id(),
                            name: self.name(),
                            file: file.rel.clone(),
                            line: idx + 1,
                            subject: what.to_string(),
                            message: format!(
                                "raw `{what}` on a channel — not `send_guarded` and no \
                                 `// SEND-OK:` justification"
                            ),
                            help: "route the send through `send_guarded` (bounded wait + kill \
                                   watch), or annotate `// SEND-OK: <why this send cannot \
                                   wedge teardown>`"
                                .to_string(),
                        });
                    }
                }
            }
        }
        // Whole-graph checks, anchored at the lint.toml `edges` line.
        if let Some(cycle) = find_cycle(&cfg.topo_workers, &|a, b| {
            cfg.topo_edges
                .iter()
                .any(|e| e.bounded && e.src == a && e.dst == b)
        }) {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: "lint.toml".to_string(),
                line: cfg.topo_edges_line,
                subject: cycle.join(" -> "),
                message: format!(
                    "declared bounded channel edges form a cycle: {}",
                    cycle.join(" -> ")
                ),
                help: "a bounded cycle can deadlock with every queue full — break it, or \
                       declare one edge `: unbounded` and justify the memory bound"
                    .to_string(),
            });
        }
        for (i, used) in edge_used.iter().enumerate() {
            if !used {
                let e = &cfg.topo_edges[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: "lint.toml".to_string(),
                    line: cfg.topo_edges_line,
                    subject: format!("{} -> {}", e.src, e.dst),
                    message: format!(
                        "declared channel edge `{} -> {}` is named by no `// CHANNEL:` tag",
                        e.src, e.dst
                    ),
                    help: "remove the stale edge from lint.toml `[topology] edges`, or tag \
                           the construction site that realises it"
                        .to_string(),
                });
            }
        }
    }
}

impl ChannelTopology {
    /// Checks one construction site's `// CHANNEL: src -> dst` tag
    /// against the declared edges and records which edge it realises.
    fn check_ctor(
        &self,
        file: &SourceFile,
        cfg: &Config,
        idx: usize,
        bounded: bool,
        edge_used: &mut [bool],
        out: &mut Vec<Diagnostic>,
    ) {
        let ctor = if bounded { "bounded" } else { "unbounded" };
        let Some(text) = file.marker_text(idx, "CHANNEL:") else {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: ctor.to_string(),
                message: format!(
                    "channel construction `{ctor}(..)` without a `// CHANNEL: <src> -> <dst>` tag"
                ),
                help: "name the declared topology edge this channel realises, e.g. \
                       `// CHANNEL: driver -> joiner`"
                    .to_string(),
            });
            return;
        };
        let Some((src, dst)) = parse_tag_edge(&text) else {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: text.clone(),
                message: format!("malformed `// CHANNEL: {text}` (expected `<src> -> <dst>`)"),
                help: "write the tag as `// CHANNEL: driver -> joiner`".to_string(),
            });
            return;
        };
        let Some(pos) = cfg
            .topo_edges
            .iter()
            .position(|e| e.src == src && e.dst == dst)
        else {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: format!("{src} -> {dst}"),
                message: format!("`// CHANNEL: {src} -> {dst}` names no declared topology edge"),
                help: "declare the edge in lint.toml `[topology] edges` (and its workers in \
                       `workers`)"
                    .to_string(),
            });
            return;
        };
        edge_used[pos] = true;
        if cfg.topo_edges[pos].bounded != bounded {
            let declared = if cfg.topo_edges[pos].bounded {
                "bounded"
            } else {
                "unbounded"
            };
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: format!("{src} -> {dst}"),
                message: format!(
                    "edge `{src} -> {dst}` is declared `{declared}` but constructed with \
                     `{ctor}(..)`"
                ),
                help: "make the declaration and the constructor agree — boundedness is what \
                       the deadlock analysis reasons about"
                    .to_string(),
            });
        }
    }
}

/// `Some(bounded?)` if the masked line constructs a channel via the
/// `bounded(..)` / `unbounded(..)` free functions (optionally
/// turbofished or path-qualified).
fn channel_ctor(mline: &str) -> Option<bool> {
    for (word, bounded) in [("unbounded", false), ("bounded", true)] {
        for pos in keyword_positions(mline, word) {
            let after = &mline[pos + word.len()..];
            if after.starts_with('(') || after.starts_with("::<") {
                return Some(bounded);
            }
        }
    }
    None
}

/// The first raw send call on the masked line, if any.
fn raw_send(mline: &str) -> Option<&'static str> {
    if has_method_call(mline, "send_timeout") {
        return Some(".send_timeout()");
    }
    if has_method_call(mline, "send") {
        return Some(".send()");
    }
    None
}

/// Parses a `// CHANNEL:` payload `src -> dst` (prose after the edge is
/// tolerated on the dst side only up to whitespace).
fn parse_tag_edge(text: &str) -> Option<(String, String)> {
    let (src, rest) = text.split_once("->")?;
    let src = src.trim();
    let dst = rest.split_whitespace().next()?;
    (!src.is_empty() && !src.contains(char::is_whitespace))
        .then(|| (src.to_string(), dst.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctor_matcher_sees_plain_path_and_turbofish_forms() {
        assert_eq!(channel_ctor("let (tx, rx) = bounded(cap);"), Some(true));
        assert_eq!(
            channel_ctor("crossbeam_channel::bounded::<Row>(8)"),
            Some(true)
        );
        assert_eq!(channel_ctor("let (tx, rx) = unbounded();"), Some(false));
        assert_eq!(channel_ctor("let x = bounded_queue.pop();"), None);
        assert_eq!(channel_ctor("self.rebounded(3)"), None);
    }

    #[test]
    fn send_matcher_skips_guarded_and_try_variants() {
        assert_eq!(raw_send("tx.send(row)?;"), Some(".send()"));
        assert_eq!(
            raw_send("tx.send_timeout(row, d)?;"),
            Some(".send_timeout()")
        );
        assert_eq!(raw_send("send_guarded(&tx, row, d, &kill)?;"), None);
        assert_eq!(raw_send("tx.try_send(row)?;"), None);
    }

    #[test]
    fn tag_edges_parse_with_trailing_prose() {
        assert_eq!(
            parse_tag_edge("driver -> joiner (per-worker fan-out)"),
            Some(("driver".into(), "joiner".into()))
        );
        assert_eq!(parse_tag_edge("no arrow here"), None);
        assert_eq!(parse_tag_edge("a b -> c"), None);
    }
}
