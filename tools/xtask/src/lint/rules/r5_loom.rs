//! R5 `loom-coverage`: every public atomic-owning type in the
//! loom-verified crates must be exercised by name in a loom model.
//!
//! The facade (R2) guarantees loom *can* see every atomic; this rule
//! guarantees some model actually *does*. It scans the `[loom] crates`
//! directories for `pub struct` declarations whose fields own an atomic
//! (`AtomicU64`, `Arc<AtomicBool>`, `Vec<AtomicU64>`, the epoch
//! `Atomic<T>` pointer, ...), then requires the type's name to appear in
//! the code (not comments) of at least one `[loom] models` file. Types
//! holding atomics only behind raw pointers (`*const Atomic<..>`) are
//! skipped — they are views into another type's allocation, and that
//! owner is the thing a model must drive. Uncovered types are reported
//! individually; a deliberate gap (e.g. a diagnostics-only counter block
//! verified by TSan instead) is recorded as a reasoned `[[allow]]` entry
//! in `lint.toml`, which doubles as the "listed as uncovered" registry.

use crate::lexer::{is_ident_byte, keyword_positions, match_brace, SourceFile};
use crate::lint::config::Config;
use crate::lint::rules::prefix_positions;
use crate::lint::{Diagnostic, Rule};

pub struct LoomCoverage;

impl Rule for LoomCoverage {
    fn id(&self) -> &'static str {
        "R5"
    }
    fn name(&self) -> &'static str {
        "loom-coverage"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        let models: Vec<&SourceFile> = files
            .iter()
            .filter(|f| cfg.loom_models.contains(&f.rel))
            .collect();
        for file in files.iter().filter(|f| f.under_any(&cfg.loom_crates)) {
            for owner in atomic_owning_pub_structs(file) {
                let covered = models.iter().any(|m| {
                    m.masked_lines
                        .iter()
                        .any(|l| !keyword_positions(l, &owner.name).is_empty())
                });
                if covered {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: file.rel.clone(),
                    line: owner.line,
                    subject: owner.name.clone(),
                    message: format!(
                        "public type `{}` owns atomic state but appears in no loom model",
                        owner.name
                    ),
                    help: format!(
                        "drive `{}` from a model in {} or record the gap as a reasoned \
                         [[allow]] entry in lint.toml",
                        owner.name,
                        cfg.loom_models.join(", ")
                    ),
                });
            }
        }
    }
}

struct Owner {
    name: String,
    /// 1-based line of the `pub struct` declaration.
    line: usize,
}

/// Public structs in `file` (non-test code) with at least one field whose
/// type names an atomic and is not behind a raw pointer.
fn atomic_owning_pub_structs(file: &SourceFile) -> Vec<Owner> {
    let mut out = Vec::new();
    for (idx, mline) in file.masked_lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let t = mline.trim_start();
        let Some(rest) = t.strip_prefix("pub struct ") else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| is_ident_byte(*c as u8))
            .collect();
        if name.is_empty() {
            continue;
        }
        if struct_owns_atomic(file, idx, mline) {
            out.push(Owner {
                name,
                line: idx + 1,
            });
        }
    }
    out
}

/// Whether the struct declared on `idx` has an atomic-typed field. Tuple
/// structs are checked on the declaration line; record structs from the
/// `{` through its match.
fn struct_owns_atomic(file: &SourceFile, idx: usize, mline: &str) -> bool {
    if mline.contains('(') {
        return line_has_owned_atomic(mline);
    }
    // Find the body `{`, which may sit on a following line after where-clauses.
    let mut open = None;
    'search: for (li, l) in file.masked_lines.iter().enumerate().skip(idx) {
        if let Some(col) = l.find('{') {
            open = Some((li, col));
            break 'search;
        }
        if l.contains(';') {
            return false; // unit struct
        }
    }
    let Some((open_line, open_col)) = open else {
        return false;
    };
    let end =
        match_brace(&file.masked_lines, open_line, open_col).unwrap_or(file.masked_lines.len() - 1);
    file.masked_lines[open_line..=end]
        .iter()
        .any(|l| line_has_owned_atomic(l))
}

/// A field line owns an atomic if an `Atomic*` type appears outside a raw
/// pointer. (`tail: [*const Atomic<Node>; H]` is a view, not ownership.)
fn line_has_owned_atomic(mline: &str) -> bool {
    !prefix_positions(mline, "Atomic").is_empty()
        && !mline.contains("*const")
        && !mline.contains("*mut")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owners(src: &str) -> Vec<String> {
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        atomic_owning_pub_structs(&f)
            .into_iter()
            .map(|o| o.name)
            .collect()
    }

    #[test]
    fn finds_record_tuple_and_wrapped_atomics() {
        let src = "\
pub struct A {\n    count: AtomicU64,\n}\n\
pub struct B(pub Arc<AtomicBool>);\n\
pub struct C {\n    xs: Vec<AtomicU64>,\n}\n\
pub struct Plain {\n    n: u64,\n}\n\
pub struct View {\n    tail: [*const Atomic<Node>; 4],\n}\n\
struct Private {\n    count: AtomicU64,\n}\n";
        assert_eq!(owners(src), vec!["A", "B", "C"]);
    }
}
