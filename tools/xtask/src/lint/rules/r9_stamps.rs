//! R9 `stamp-discipline`: ordered site pairs are tagged and the "before"
//! site lexically dominates the "after" site in its function.
//!
//! The durability and watermark contracts are two-site orderings: the
//! WAL append happens before the dispatch it logs, the delivery before
//! the mark that makes it exactly-once, the batcher flush before the
//! heartbeat that declares progress, the stamp read before the tracker
//! observation that could advance it. `lint.toml [stamps]` declares the
//! pairs; this rule keeps the code tagged and ordered:
//!
//! - sentinel calls that *are* one side of a declared ordering —
//!   `.mark_emitted(..)`, `.record_event(..)`, and `.observe(..)` on a
//!   tracker — must carry `// STAMP: <pair>.{pre,post}`;
//! - every tag must name a declared pair and the `pre`/`post` role;
//! - each `post` tag must be lexically dominated by a `pre` tag of the
//!   same pair in the same (innermost) function — a missing or inverted
//!   pre is an error;
//! - a declared pair no tag names is a stale declaration, anchored at
//!   the `[stamps] pairs` line of lint.toml.
//!
//! Lexical dominance is the static half only: it catches reorderings
//! introduced by refactors within a function, while cross-thread
//! visibility of the ordering is the runtime protocol witness's job
//! (`oij_common::protowit`, `--cfg protowit`). The WAL callee itself
//! lives in `crates/durability`, outside `[scope] src` — the ordering
//! obligation sits at the core call sites, which is where this rule
//! looks. `#[cfg(test)]` code is exempt.

use crate::lexer::SourceFile;
use crate::lint::config::Config;
use crate::lint::rules::{fn_regions, has_method_call, innermost_region};
use crate::lint::{Diagnostic, Rule};

pub struct StampDiscipline;

impl Rule for StampDiscipline {
    fn id(&self) -> &'static str {
        "R9"
    }
    fn name(&self) -> &'static str {
        "stamp-discipline"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        // No declared pairs = stamp checking not adopted; stay inert.
        if cfg.stamp_pairs.is_empty() {
            return;
        }
        // Which declared pairs some `// STAMP:` tag actually names.
        let mut pair_used = vec![false; cfg.stamp_pairs.len()];
        for file in files.iter().filter(|f| f.under_any(&cfg.scope_src)) {
            // Well-formed tags in this file: (pair, is_pre, 0-based line).
            let mut tags: Vec<(String, bool, usize)> = Vec::new();
            for idx in 0..file.lines.len() {
                if file.in_test[idx] {
                    continue;
                }
                if let Some(token) = tag_token(&file.comment_lines[idx]) {
                    if let Some((pair, is_pre)) =
                        self.check_tag(file, cfg, idx, &token, &mut pair_used, out)
                    {
                        tags.push((pair, is_pre, idx));
                    }
                }
                if let Some(what) = stamp_sentinel(&file.masked_lines[idx]) {
                    if !file.marker_near(idx, "STAMP:") {
                        out.push(Diagnostic {
                            rule: self.id(),
                            name: self.name(),
                            file: file.rel.clone(),
                            line: idx + 1,
                            subject: what.to_string(),
                            message: format!(
                                "`{what}` call without a `// STAMP: <pair>.pre/post` tag — \
                                 it is one side of a declared ordering"
                            ),
                            help: "name the pair and role, e.g. \
                                   `// STAMP: deliver-mark.post`; if this call is genuinely \
                                   outside every declared ordering, record a reasoned \
                                   `[[allow]]`"
                                .to_string(),
                        });
                    }
                }
            }
            self.check_dominance(file, &tags, out);
        }
        for (i, used) in pair_used.iter().enumerate() {
            if !used {
                let p = &cfg.stamp_pairs[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: "lint.toml".to_string(),
                    line: cfg.stamp_pairs_line,
                    subject: p.name.clone(),
                    message: format!(
                        "declared stamp pair `{}` ({} < {}) is named by no `// STAMP:` tag",
                        p.name, p.pre, p.post
                    ),
                    help: "remove the stale pair from lint.toml `[stamps] pairs`, or tag \
                           the sites that realise it"
                        .to_string(),
                });
            }
        }
    }
}

impl StampDiscipline {
    /// Validates one `// STAMP: <pair>.<role>` tag found on line `idx`.
    fn check_tag(
        &self,
        file: &SourceFile,
        cfg: &Config,
        idx: usize,
        token: &str,
        pair_used: &mut [bool],
        out: &mut Vec<Diagnostic>,
    ) -> Option<(String, bool)> {
        let mut diag = |subject: String, message: String, help: &str| {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject,
                message,
                help: help.to_string(),
            });
        };
        let parsed = token
            .split_once('.')
            .filter(|(p, _)| !p.is_empty())
            .and_then(|(p, role)| match role {
                "pre" => Some((p, true)),
                "post" => Some((p, false)),
                _ => None,
            });
        let Some((pair, is_pre)) = parsed else {
            diag(
                token.to_string(),
                format!("malformed `// STAMP: {token}` (expected `<pair>.pre` or `<pair>.post`)"),
                "write the tag as `// STAMP: wal-dispatch.pre`",
            );
            return None;
        };
        let Some(pos) = cfg.stamp_pairs.iter().position(|p| p.name == pair) else {
            diag(
                token.to_string(),
                format!("`// STAMP: {token}` names no declared stamp pair `{pair}`"),
                "declare the pair in lint.toml `[stamps] pairs` (`\"name : pre < post\"`)",
            );
            return None;
        };
        pair_used[pos] = true;
        Some((pair.to_string(), is_pre))
    }

    /// Each `post` tag must have a `pre` tag of the same pair earlier in
    /// the same innermost function.
    fn check_dominance(
        &self,
        file: &SourceFile,
        tags: &[(String, bool, usize)],
        out: &mut Vec<Diagnostic>,
    ) {
        let regions = fn_regions(&file.masked_lines);
        for (pair, is_pre, idx) in tags {
            if *is_pre {
                continue;
            }
            let region = innermost_region(&regions, *idx);
            let same_fn_pres: Vec<usize> = tags
                .iter()
                .filter(|(p2, pre2, idx2)| {
                    p2 == pair && *pre2 && innermost_region(&regions, *idx2) == region
                })
                .map(|(_, _, idx2)| *idx2)
                .collect();
            if same_fn_pres.iter().any(|p| p < idx) {
                continue;
            }
            let (what, help) = if let Some(late) = same_fn_pres.first() {
                (
                    format!(
                        "`{pair}.post` (line {}) precedes `{pair}.pre` (line {}) — the \
                         declared order is inverted",
                        idx + 1,
                        late + 1
                    ),
                    "the pre site must execute first; reorder the calls (or fix the tags \
                     if they drifted from the code)",
                )
            } else {
                (
                    format!(
                        "`{pair}.post` has no `{pair}.pre` tag in the same function — the \
                         declared ordering's first half is missing"
                    ),
                    "tag the site that must happen first with `.pre` in the same function, \
                     or move the post call to where the ordering is visible",
                )
            };
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: format!("{pair}.post"),
                message: what,
                help: help.to_string(),
            });
        }
    }
}

/// The first `// STAMP:` payload token on the comment-visible line.
fn tag_token(cline: &str) -> Option<String> {
    let pos = cline.find("STAMP:")?;
    let text = &cline[pos + "STAMP:".len()..];
    Some(text.split_whitespace().next().unwrap_or("").to_string())
}

/// `Some(label)` if the masked line calls a sentinel that is one side of
/// a declared ordering: the exactly-once mark, the WAL append, or a
/// watermark-tracker observation.
fn stamp_sentinel(mline: &str) -> Option<&'static str> {
    if has_method_call(mline, "mark_emitted") {
        return Some("mark_emitted");
    }
    if has_method_call(mline, "record_event") {
        return Some("record_event");
    }
    if has_method_call(mline, "observe") && mline.contains("tracker") {
        return Some("tracker.observe");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_matcher_sees_the_three_call_shapes() {
        assert_eq!(
            stamp_sentinel("runtime.mark_emitted(fkey)?;"),
            Some("mark_emitted")
        );
        assert_eq!(
            stamp_sentinel("rt.record_event(LoggedEvent {"),
            Some("record_event")
        );
        assert_eq!(
            stamp_sentinel("self.tracker.observe(tuple.ts);"),
            Some("tracker.observe")
        );
        // A non-tracker observe is someone else's method.
        assert_eq!(stamp_sentinel("histogram.observe(v);"), None);
        assert_eq!(stamp_sentinel("let x = mark_emitted;"), None);
    }

    #[test]
    fn tag_tokens_parse_with_trailing_prose() {
        assert_eq!(
            tag_token("// STAMP: wal-dispatch.pre (append before handoff)"),
            Some("wal-dispatch.pre".to_string())
        );
        assert_eq!(tag_token("// no tag"), None);
    }
}
