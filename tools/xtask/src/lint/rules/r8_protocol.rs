//! R8 `message-protocol`: every `Msg`-constructing send site names a
//! declared protocol state, and no function sends past its `Finish`.
//!
//! `lint.toml [protocol]` declares, per channel edge, a small automaton
//! over the message alphabet `data`/`batch`/`heartbeat`/`finish`
//! (`Msg::Data`/`Msg::Batch`/`Msg::Heartbeat`/`Msg::Flush`). This rule
//! keeps code and declaration in sync from both sides, mirroring R7:
//!
//! - every `Msg::<Variant>` *construction* in scope (match arms and
//!   `if let`/`matches!` patterns are consumers, not senders) carries
//!   `// PROTO: <edge>.<state>` naming the state the send *enters*;
//! - every tag — on a `Msg` site or hand-placed on a non-`Msg` send
//!   path (SplitJoin's collector edge carries `ToCollector`, not `Msg`)
//!   — must name a declared edge and a state reachable in its automaton,
//!   entered by a transition whose symbol matches the constructed
//!   variant where one is present;
//! - within one function, a tag on the same edge lexically after a
//!   terminal-state tag is a post-Finish send — the automaton has no
//!   outgoing transitions there;
//! - a declared edge no tag names is a stale declaration, anchored at
//!   the `[protocol] edges` line of lint.toml.
//!
//! Lexical per-function ordering is deliberately the static half only:
//! cross-function and cross-thread interleavings are the runtime
//! protocol witness's job (`oij_common::protowit`, `--cfg protowit`).
//! `#[cfg(test)]` code is exempt.

use crate::lexer::{keyword_positions, SourceFile};
use crate::lint::config::Config;
use crate::lint::rules::{fn_regions, innermost_region};
use crate::lint::{Diagnostic, Rule};

pub struct MessageProtocol;

/// `Msg` variants and the automaton symbol each one realises.
const VARIANTS: [(&str, &str); 4] = [
    ("Data", "data"),
    ("Batch", "batch"),
    ("Heartbeat", "heartbeat"),
    ("Flush", "finish"),
];

impl Rule for MessageProtocol {
    fn id(&self) -> &'static str {
        "R8"
    }
    fn name(&self) -> &'static str {
        "message-protocol"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        // No declared protocol = message-grammar checking not adopted;
        // stay inert.
        if cfg.proto_edges.is_empty() {
            return;
        }
        // Which declared edges some `// PROTO:` tag actually names.
        let mut edge_used = vec![false; cfg.proto_edges.len()];
        for file in files.iter().filter(|f| f.under_any(&cfg.scope_src)) {
            // Well-formed tags in this file: (edge, state, 0-based line).
            let mut tags: Vec<(String, String, usize)> = Vec::new();
            for idx in 0..file.lines.len() {
                if file.in_test[idx] {
                    continue;
                }
                if let Some(token) = tag_token(&file.comment_lines[idx]) {
                    if let Some((edge, state)) =
                        self.check_tag(file, cfg, idx, &token, &mut edge_used, out)
                    {
                        tags.push((edge, state, idx));
                    }
                }
                if let Some((variant, sym)) = msg_ctor(&file.masked_lines[idx]) {
                    self.check_site(file, cfg, idx, variant, sym, out);
                }
            }
            self.check_post_finish(file, cfg, &tags, out);
        }
        for (i, used) in edge_used.iter().enumerate() {
            if !used {
                let e = &cfg.proto_edges[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: "lint.toml".to_string(),
                    line: cfg.proto_edges_line,
                    subject: e.name.clone(),
                    message: format!(
                        "declared protocol edge `{}` is named by no `// PROTO:` tag",
                        e.name
                    ),
                    help: "remove the stale edge from lint.toml `[protocol] edges`, or tag \
                           the send sites that realise it"
                        .to_string(),
                });
            }
        }
    }
}

impl MessageProtocol {
    /// Validates one `// PROTO: <edge>.<state>` tag found on line `idx`
    /// and returns the parsed pair if it names a declared, reachable
    /// state (so the caller can feed the post-Finish check).
    fn check_tag(
        &self,
        file: &SourceFile,
        cfg: &Config,
        idx: usize,
        token: &str,
        edge_used: &mut [bool],
        out: &mut Vec<Diagnostic>,
    ) -> Option<(String, String)> {
        let mut diag = |subject: String, message: String, help: &str| {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject,
                message,
                help: help.to_string(),
            });
        };
        let Some((edge, state)) = token
            .split_once('.')
            .filter(|(e, s)| !e.is_empty() && !s.is_empty())
        else {
            diag(
                token.to_string(),
                format!("malformed `// PROTO: {token}` (expected `<edge>.<state>`)"),
                "write the tag as `// PROTO: driver-joiner.stream`",
            );
            return None;
        };
        let Some(pos) = cfg.proto_edges.iter().position(|e| e.name == edge) else {
            diag(
                token.to_string(),
                format!("`// PROTO: {token}` names no declared protocol edge `{edge}`"),
                "declare the edge in lint.toml `[protocol] edges` (as an alias of a \
                 [topology] edge)",
            );
            return None;
        };
        edge_used[pos] = true;
        if !cfg.proto_states(edge).contains(&state) {
            diag(
                token.to_string(),
                format!(
                    "`// PROTO: {token}` names state `{state}`, which is not a state of \
                     edge `{edge}`'s automaton"
                ),
                "tag the state the send enters; the automaton's states are the ones named \
                 in lint.toml `[protocol] transitions`",
            );
            return None;
        }
        if !cfg.proto_reachable(edge, state) {
            diag(
                token.to_string(),
                format!(
                    "`// PROTO: {token}` names state `{state}`, which is unreachable from \
                     edge `{edge}`'s start state"
                ),
                "a send can only enter a state the automaton can reach — fix the tag or \
                 the declared transitions",
            );
            return None;
        }
        Some((edge.to_string(), state.to_string()))
    }

    /// Checks one `Msg::<Variant>` construction site: it must carry a
    /// `// PROTO:` tag, and the tagged state must be entered by a
    /// transition whose symbol matches the variant. Malformed or
    /// undeclared tags are reported by [`check_tag`](Self::check_tag),
    /// not duplicated here.
    fn check_site(
        &self,
        file: &SourceFile,
        cfg: &Config,
        idx: usize,
        variant: &str,
        sym: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        let Some(text) = file.marker_text(idx, "PROTO:") else {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: format!("Msg::{variant}"),
                message: format!(
                    "`Msg::{variant}` send site without a `// PROTO: <edge>.<state>` tag"
                ),
                help: "name the protocol state this send enters, e.g. \
                       `// PROTO: driver-joiner.stream`"
                    .to_string(),
            });
            return;
        };
        let Some((edge, state)) = first_token(&text).split_once('.') else {
            return; // malformed — reported by the tag scan
        };
        if cfg.proto_edge(edge).is_none()
            || !cfg.proto_states(edge).contains(&state)
            || !cfg.proto_reachable(edge, state)
        {
            return; // undeclared/unreachable — reported by the tag scan
        }
        if !cfg.proto_enters(edge, sym, state) {
            out.push(Diagnostic {
                rule: self.id(),
                name: self.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: format!("{edge}.{state}"),
                message: format!(
                    "`Msg::{variant}` (symbol `{sym}`) cannot enter state `{state}` — no \
                     `--{sym}-->` transition into it on edge `{edge}`"
                ),
                help: "tag the state this variant's transition actually enters, or declare \
                       the missing transition in lint.toml `[protocol] transitions`"
                    .to_string(),
            });
        }
    }

    /// Within one function, a tag on the same edge lexically after a
    /// terminal-state tag is a post-Finish send.
    fn check_post_finish(
        &self,
        file: &SourceFile,
        cfg: &Config,
        tags: &[(String, String, usize)],
        out: &mut Vec<Diagnostic>,
    ) {
        let regions = fn_regions(&file.masked_lines);
        for (edge, state, idx) in tags {
            if Some(state.as_str()) != cfg.proto_terminal(edge) {
                continue;
            }
            let region = innermost_region(&regions, *idx);
            for (e2, s2, idx2) in tags {
                if e2 == edge && idx2 > idx && innermost_region(&regions, *idx2) == region {
                    out.push(Diagnostic {
                        rule: self.id(),
                        name: self.name(),
                        file: file.rel.clone(),
                        line: idx2 + 1,
                        subject: format!("{e2}.{s2}"),
                        message: format!(
                            "send on edge `{e2}` after the `Finish` tag `{edge}.{state}` \
                             (line {}) in the same function",
                            idx + 1
                        ),
                        help: "the terminal state has no outgoing transitions — nothing may \
                               be sent on this edge once it is closed"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// The first `// PROTO:` payload token on the comment-visible line.
fn tag_token(cline: &str) -> Option<String> {
    let pos = cline.find("PROTO:")?;
    first_token(&cline[pos + "PROTO:".len()..])
        .to_string()
        .into()
}

/// The payload up to the first whitespace (trailing prose tolerated).
fn first_token(text: &str) -> &str {
    text.split_whitespace().next().unwrap_or("")
}

/// `Some((variant, symbol))` if the masked line *constructs* a `Msg`
/// variant. Pattern positions — match arms (`=>` after the path),
/// `if let` / `while let` scrutinees, `matches!` — are consumers.
fn msg_ctor(mline: &str) -> Option<(&'static str, &'static str)> {
    if mline.contains("if let") || mline.contains("while let") || mline.contains("matches!") {
        return None;
    }
    for pos in keyword_positions(mline, "Msg") {
        let after = &mline[pos + "Msg".len()..];
        let Some(rest) = after.strip_prefix("::") else {
            continue;
        };
        for (variant, sym) in VARIANTS {
            if rest.starts_with(variant)
                && !rest[variant.len()..]
                    .bytes()
                    .next()
                    .is_some_and(crate::lexer::is_ident_byte)
            {
                // A `=>` after the path marks a match arm.
                if mline[pos..].contains("=>") {
                    break;
                }
                return Some((variant, sym));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctor_matcher_sees_constructions_not_patterns() {
        assert_eq!(msg_ctor("tx.send(Msg::Data(d))"), Some(("Data", "data")));
        assert_eq!(
            msg_ctor("route(h, Msg::Heartbeat(wm));"),
            Some(("Heartbeat", "heartbeat"))
        );
        assert_eq!(msg_ctor("let m = Msg::Flush;"), Some(("Flush", "finish")));
        assert_eq!(msg_ctor("Msg::Batch(v)"), Some(("Batch", "batch")));
        // Patterns are consumers.
        assert_eq!(msg_ctor("Msg::Data(d) => self.on_data(d),"), None);
        assert_eq!(msg_ctor("if let Msg::Flush = m {"), None);
        assert_eq!(msg_ctor("while let Msg::Data(d) = next() {"), None);
        assert_eq!(msg_ctor("assert!(matches!(m, Msg::Flush));"), None);
        // Other types and variants don't match.
        assert_eq!(msg_ctor("DataMsg { ts, row }"), None);
        assert_eq!(msg_ctor("Msg::DataLike(x)"), None);
        assert_eq!(msg_ctor("Prepared::Data(DataMsg {"), None);
    }

    #[test]
    fn tag_tokens_parse_with_trailing_prose() {
        assert_eq!(
            tag_token("// PROTO: dj.stream (batched fast path)"),
            Some("dj.stream".to_string())
        );
        assert_eq!(tag_token("// no tag here"), None);
        assert_eq!(first_token("  dj.closed  prose"), "dj.closed");
    }
}
