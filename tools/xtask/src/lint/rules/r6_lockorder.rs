//! R6 `lock-order`: every lock acquisition names its declared class and
//! lexically nested acquisitions respect the declared partial order.
//!
//! A deadlock needs a cycle in the waits-for graph, and the cheapest
//! place to break the cycle is before it compiles: `lint.toml
//! [lockorder]` declares the workspace's lock classes and the pairs a
//! thread may nest (`"a -> b"` = may take `b` while holding `a`). This
//! rule then demands that (1) every acquisition site — `.lock()`,
//! `.read()`, `.write()` and their `try_` siblings with empty argument
//! lists — carries a `// LOCK: <class>` tag naming a declared class, and
//! (2) within a function, an acquisition made while another guard is
//! lexically live is reachable from every held class in the transitive
//! closure of the declared order. Same-class nesting is always an error
//! (std locks are not re-entrant).
//!
//! Guard lifetime is tracked lexically, which is the right fidelity for
//! a token-level linter: a `let`-bound guard lives until its block's
//! closing brace or an explicit `drop(name)`; a temporary guard
//! (`x.lock().push(..)`) dies at its statement's `;`. The runtime
//! lockdep witness (`oij_common::lockdep`) covers the dynamic side; this
//! rule keeps the declared artifact honest at review time.
//! `#[cfg(test)]` code is exempt.

use crate::lexer::SourceFile;
use crate::lint::config::Config;
use crate::lint::{Diagnostic, Rule};

/// Zero-argument acquisition methods on the facade lock types.
const ACQUIRE_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

pub struct LockOrder;

/// One lexically live guard.
struct Held {
    class: String,
    /// Brace depth at the acquisition; the guard dies when depth drops
    /// below this.
    depth: i64,
    /// 1-based acquisition line, for the diagnostic message.
    line: usize,
    /// `let` binding name, if any — `drop(<name>)` releases it.
    binding: Option<String>,
    /// Temporary guard: released at the end of its statement.
    temp: bool,
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "R6"
    }
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        // No declared classes = the workspace has not adopted lock-order
        // checking; stay inert rather than demand tags against an empty
        // vocabulary.
        if cfg.lock_classes.is_empty() {
            return;
        }
        for file in files.iter().filter(|f| f.under_any(&cfg.scope_src)) {
            check_file(self, file, cfg, out);
        }
    }
}

fn check_file(rule: &LockOrder, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let mut depth = 0i64;
    let mut held: Vec<Held> = Vec::new();
    for (idx, mline) in file.masked_lines.iter().enumerate() {
        // Test regions are brace-balanced mods, so skipping their lines
        // keeps the depth counter aligned with production code.
        if file.in_test[idx] {
            continue;
        }
        let acquisitions = acquire_positions(mline);
        let mut acq = acquisitions.iter().peekable();
        for (col, b) in mline.bytes().enumerate() {
            while acq.peek().is_some_and(|&&(c, _)| c <= col) {
                let &&(_, method) = acq.peek().unwrap();
                acq.next();
                on_acquire(rule, file, cfg, idx, method, depth, &mut held, out);
            }
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                _ => {}
            }
        }
        // `drop(name)` releases the named guard.
        for name in dropped_names(mline) {
            held.retain(|h| h.binding.as_deref() != Some(name));
        }
        // Temporaries die at the `;` ending their statement.
        if mline.trim_end().ends_with(';') {
            held.retain(|h| !h.temp);
        }
    }
}

/// Handles one acquisition site: tag lookup, class validation, and the
/// nested-order check against every lexically held guard.
#[allow(clippy::too_many_arguments)]
fn on_acquire(
    rule: &LockOrder,
    file: &SourceFile,
    cfg: &Config,
    idx: usize,
    method: &str,
    depth: i64,
    held: &mut Vec<Held>,
    out: &mut Vec<Diagnostic>,
) {
    let subject = format!(".{method}()");
    let Some(text) = file.marker_text(idx, "LOCK:") else {
        out.push(Diagnostic {
            rule: rule.id(),
            name: rule.name(),
            file: file.rel.clone(),
            line: idx + 1,
            subject,
            message: format!("lock acquisition `.{method}()` without a `// LOCK: <class>` tag"),
            help: format!(
                "tag the acquisition with its declared class: `// LOCK: <one of {}>`",
                cfg.lock_classes.join("/")
            ),
        });
        return;
    };
    let class = text.split_whitespace().next().unwrap_or("").to_string();
    if !cfg.lock_classes.contains(&class) {
        out.push(Diagnostic {
            rule: rule.id(),
            name: rule.name(),
            file: file.rel.clone(),
            line: idx + 1,
            subject: class.clone(),
            message: format!("`// LOCK: {class}` names no declared lock class"),
            help: format!(
                "declare `{class}` in lint.toml `[lockorder] classes` (currently: {})",
                cfg.lock_classes.join(", ")
            ),
        });
        return;
    }
    for h in held.iter() {
        if h.class == class {
            out.push(Diagnostic {
                rule: rule.id(),
                name: rule.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: class.clone(),
                message: format!(
                    "re-entrant acquisition of lock class `{class}` (already held since \
                     line {})",
                    h.line
                ),
                help: "std locks are not re-entrant — release the first guard before \
                       re-acquiring, or split the critical section"
                    .to_string(),
            });
        } else if !cfg.lock_order_allows(&h.class, &class) {
            out.push(Diagnostic {
                rule: rule.id(),
                name: rule.name(),
                file: file.rel.clone(),
                line: idx + 1,
                subject: format!("{} -> {class}", h.class),
                message: format!(
                    "acquiring `{class}` while holding `{}` (line {}) is not in the \
                     declared lock order",
                    h.class, h.line
                ),
                help: format!(
                    "declare `\"{} -> {class}\"` in lint.toml `[lockorder] order`, or \
                     restructure so the guards do not nest",
                    h.class
                ),
            });
        }
    }
    let binding = let_binding(file, idx);
    held.push(Held {
        class,
        depth,
        line: idx + 1,
        temp: binding.is_none(),
        binding,
    });
}

/// Byte columns (and methods) of zero-argument acquisition calls
/// `.method()` on the masked line, in order.
fn acquire_positions(mline: &str) -> Vec<(usize, &'static str)> {
    let bytes = mline.as_bytes();
    let mut out = Vec::new();
    for m in ACQUIRE_METHODS {
        let mut from = 0;
        while let Some(pos) = mline[from..].find(m) {
            let start = from + pos;
            let end = start + m.len();
            from = end;
            if start == 0 || bytes[start - 1] != b'.' {
                continue;
            }
            if mline[end..].starts_with("()") {
                out.push((start, m));
            }
        }
    }
    // A `.try_lock()` site never double-counts: the inner `lock` match is
    // preceded by `_`, not `.`, so only the `try_` entry survives.
    out.sort_by_key(|&(c, _)| c);
    out
}

/// The `let` binding name of the statement containing line `idx`, if the
/// statement's first line starts one (`let [mut] name = ...`).
fn let_binding(file: &SourceFile, idx: usize) -> Option<String> {
    let mut start = idx;
    while start > 0 {
        let prev = file.masked_lines[start - 1].trim();
        if prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
            break;
        }
        start -= 1;
    }
    let t = file.masked_lines[start].trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Names passed to `drop(...)` on the masked line.
fn dropped_names(mline: &str) -> Vec<&str> {
    let mut out = Vec::new();
    for pos in crate::lexer::keyword_positions(mline, "drop") {
        let after = &mline[pos + 4..];
        let Some(arg) = after.strip_prefix('(') else {
            continue;
        };
        let name_len = arg
            .bytes()
            .take_while(|&b| crate::lexer::is_ident_byte(b))
            .count();
        if name_len > 0 && arg[name_len..].starts_with(')') {
            out.push(&arg[..name_len]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquisition_matcher_requires_dot_and_empty_parens() {
        assert_eq!(
            acquire_positions("let g = self.mu.lock();"),
            vec![(16, "lock")]
        );
        assert_eq!(
            acquire_positions("let g = self.rw.try_write();"),
            vec![(16, "try_write")]
        );
        // io-style calls with arguments are not lock acquisitions.
        assert!(acquire_positions("file.read(&mut buf)").is_empty());
        assert!(acquire_positions("sock.write(bytes)").is_empty());
        // Free functions are not method calls.
        assert!(acquire_positions("lock()").is_empty());
    }

    #[test]
    fn drop_matcher_extracts_simple_names() {
        assert_eq!(dropped_names("drop(guard);"), vec!["guard"]);
        assert!(dropped_names("self.drop_all(guard)").is_empty());
        assert!(dropped_names("drop(a.b)").is_empty());
    }
}
