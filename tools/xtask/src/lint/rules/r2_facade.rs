//! R2 `facade-only-sync`: loom-verified crates must reach atomics and
//! locks through their `sync.rs` facade, never `std::sync` directly.
//!
//! Loom only explores interleavings of operations it instruments; an
//! atomic constructed from `std::sync::atomic` inside a loom-verified
//! crate is invisible to the model checker, so the facade (`#[cfg(loom)]`
//! ⇒ vendored loom, otherwise std) is the single door. The rule flags, in
//! any in-scope non-facade file: `std::sync::atomic`, direct
//! `std::sync::{Mutex,RwLock,Condvar}` paths, grouped imports
//! (`use std::sync::{Arc, Mutex}`) naming one of those items, and
//! `loom::sync` (the facade alone decides when loom is in play).
//! `Arc` and `mpsc` stay importable — loom models them via the facade's
//! re-exports only where interleavings matter. `#[cfg(test)]` code is
//! exempt: tests run without loom instrumentation by construction.

use crate::lexer::SourceFile;
use crate::lint::config::Config;
use crate::lint::{Diagnostic, Rule};

const BANNED_ITEMS: [&str; 4] = ["atomic", "Mutex", "RwLock", "Condvar"];

pub struct FacadeOnlySync;

impl Rule for FacadeOnlySync {
    fn id(&self) -> &'static str {
        "R2"
    }
    fn name(&self) -> &'static str {
        "facade-only-sync"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        for file in files
            .iter()
            .filter(|f| f.under_any(&cfg.scope_src) && !cfg.facade_files.contains(&f.rel))
        {
            for (idx, mline) in file.masked_lines.iter().enumerate() {
                if file.in_test[idx] {
                    continue;
                }
                if let Some(path) = banned_sync_path(mline) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        name: self.name(),
                        file: file.rel.clone(),
                        line: idx + 1,
                        subject: path.clone(),
                        message: format!(
                            "`{path}` referenced outside the sync facade in a loom-verified crate"
                        ),
                        help: "import the primitive from the crate's `sync` module so loom \
                               instruments it under `cfg(loom)`"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Returns the first facade-bypassing path named on the masked line.
fn banned_sync_path(mline: &str) -> Option<String> {
    if mline.contains("loom::sync") {
        return Some("loom::sync".to_string());
    }
    for item in BANNED_ITEMS {
        let direct = format!("std::sync::{item}");
        if mline.contains(&direct) {
            return Some(direct);
        }
    }
    // Grouped import: `use std::sync::{Arc, Mutex};` — the brace group is
    // on one line in rustfmt'd code; an unclosed group is scanned as far
    // as the line goes, which still catches the leading banned items.
    if let Some(pos) = mline.find("std::sync::{") {
        let inner = &mline[pos + "std::sync::{".len()..];
        let inner = inner.split('}').next().unwrap_or(inner);
        for part in inner.split(',') {
            let leaf = part.trim();
            let leaf = leaf.split("::").next().unwrap_or(leaf).trim();
            if BANNED_ITEMS.contains(&leaf) {
                return Some(format!("std::sync::{leaf}"));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_direct_and_grouped_paths_but_not_arc() {
        assert_eq!(
            banned_sync_path("use std::sync::atomic::{AtomicU64, Ordering};"),
            Some("std::sync::atomic".into())
        );
        assert_eq!(
            banned_sync_path("use std::sync::{Arc, Mutex};"),
            Some("std::sync::Mutex".into())
        );
        assert_eq!(banned_sync_path("use std::sync::{Arc, mpsc};"), None);
        assert_eq!(
            banned_sync_path("use loom::sync::atomic::AtomicU64;"),
            Some("loom::sync".into())
        );
        assert_eq!(banned_sync_path("use std::sync::Arc;"), None);
    }
}
