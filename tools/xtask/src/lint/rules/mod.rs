//! The rule registry and the token-pattern helpers the rules share.
//!
//! Each rule is a unit struct implementing [`Rule`]; [`registry`] returns
//! them in id order. Rules scan the masked line view (comments and
//! literal contents blanked), so a pattern match is always a code match.

mod r1_ordering;
mod r2_facade;
mod r3_panic;
mod r4_blocking;
mod r5_loom;
mod r6_lockorder;
mod r7_topology;

use super::Rule;
use crate::lexer::{is_ident_byte, keyword_positions};

/// All rules, in id order. `check_files` runs them in this order; ids are
/// stable and referenced from `lint.toml`.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(r1_ordering::OrderingJustification),
        Box::new(r2_facade::FacadeOnlySync),
        Box::new(r3_panic::HotPathPanic),
        Box::new(r4_blocking::HotPathBlocking),
        Box::new(r5_loom::LoomCoverage),
        Box::new(r6_lockorder::LockOrder),
        Box::new(r7_topology::ChannelTopology),
    ]
}

/// Byte offsets where `word` starts at an identifier boundary, with no
/// boundary requirement after it (`prefix_positions("AtomicU64", "Atomic")`
/// matches; `keyword_positions` would not).
pub(crate) fn prefix_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            out.push(start);
        }
        from = start + word.len();
    }
    out
}

/// True if the masked line contains a method call `.name(`.
pub(crate) fn has_method_call(mline: &str, name: &str) -> bool {
    let bytes = mline.as_bytes();
    keyword_positions(mline, name).into_iter().any(|pos| {
        pos > 0 && bytes[pos - 1] == b'.' && bytes.get(pos + name.len()).copied() == Some(b'(')
    })
}

/// True if the masked line invokes the macro `name!`.
pub(crate) fn has_macro_call(mline: &str, name: &str) -> bool {
    let bytes = mline.as_bytes();
    keyword_positions(mline, name)
        .into_iter()
        .any(|pos| bytes.get(pos + name.len()).copied() == Some(b'!'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_positions_only_check_the_left_boundary() {
        assert_eq!(prefix_positions("AtomicU64", "Atomic"), vec![0]);
        assert_eq!(prefix_positions("Arc<AtomicBool>", "Atomic"), vec![4]);
        assert!(prefix_positions("NonAtomicU64", "Atomic").is_empty());
    }

    #[test]
    fn method_and_macro_matchers() {
        assert!(has_method_call("x.unwrap()", "unwrap"));
        assert!(!has_method_call("x.unwrap_or(0)", "unwrap"));
        assert!(!has_method_call("unwrap()", "unwrap"));
        assert!(has_macro_call("panic!(\"boom\")", "panic"));
        assert!(!has_macro_call("panic()", "panic"));
    }
}
