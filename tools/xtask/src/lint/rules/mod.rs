//! The rule registry and the token-pattern helpers the rules share.
//!
//! Each rule is a unit struct implementing [`Rule`]; [`registry`] returns
//! them in id order. Rules scan the masked line view (comments and
//! literal contents blanked), so a pattern match is always a code match.

mod r1_ordering;
mod r2_facade;
mod r3_panic;
mod r4_blocking;
mod r5_loom;
mod r6_lockorder;
mod r7_topology;
mod r8_protocol;
mod r9_stamps;

use super::Rule;
use crate::lexer::{find_char_from, is_ident_byte, keyword_positions, match_brace};

/// All rules, in id order. `check_files` runs them in this order; ids are
/// stable and referenced from `lint.toml`.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(r1_ordering::OrderingJustification),
        Box::new(r2_facade::FacadeOnlySync),
        Box::new(r3_panic::HotPathPanic),
        Box::new(r4_blocking::HotPathBlocking),
        Box::new(r5_loom::LoomCoverage),
        Box::new(r6_lockorder::LockOrder),
        Box::new(r7_topology::ChannelTopology),
        Box::new(r8_protocol::MessageProtocol),
        Box::new(r9_stamps::StampDiscipline),
    ]
}

/// Line spans `(first, last)` of every `fn` item body, in source order.
/// Bodiless declarations (trait methods, extern fns) contribute nothing:
/// the scan for the opening `{` stops at a `;`. R8's post-Finish check
/// and R9's dominance check both reason per function.
pub(crate) fn fn_regions(masked_lines: &[String]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (idx, mline) in masked_lines.iter().enumerate() {
        for pos in keyword_positions(mline, "fn") {
            let Some((ol, oc)) = body_open(masked_lines, idx, pos) else {
                continue;
            };
            if let Some(end) = match_brace(masked_lines, ol, oc) {
                out.push((idx, end));
            }
        }
    }
    out
}

/// The innermost `fn` region containing `line`, if any.
pub(crate) fn innermost_region(regions: &[(usize, usize)], line: usize) -> Option<(usize, usize)> {
    regions
        .iter()
        .filter(|(s, e)| *s <= line && line <= *e)
        .max_by_key(|(s, _)| *s)
        .copied()
}

/// Position of the `{` opening a `fn` body whose `fn` keyword sits at
/// (`line`, `col`), or `None` for a bodiless declaration (a `;` is seen
/// first).
fn body_open(masked_lines: &[String], line: usize, col: usize) -> Option<(usize, usize)> {
    let semi = find_char_from(masked_lines, line, col, ';');
    let open = find_char_from(masked_lines, line, col, '{')?;
    match semi {
        Some(s) if s < open => None,
        _ => Some(open),
    }
}

/// Byte offsets where `word` starts at an identifier boundary, with no
/// boundary requirement after it (`prefix_positions("AtomicU64", "Atomic")`
/// matches; `keyword_positions` would not).
pub(crate) fn prefix_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            out.push(start);
        }
        from = start + word.len();
    }
    out
}

/// True if the masked line contains a method call `.name(`.
pub(crate) fn has_method_call(mline: &str, name: &str) -> bool {
    let bytes = mline.as_bytes();
    keyword_positions(mline, name).into_iter().any(|pos| {
        pos > 0 && bytes[pos - 1] == b'.' && bytes.get(pos + name.len()).copied() == Some(b'(')
    })
}

/// True if the masked line invokes the macro `name!`.
pub(crate) fn has_macro_call(mline: &str, name: &str) -> bool {
    let bytes = mline.as_bytes();
    keyword_positions(mline, name)
        .into_iter()
        .any(|pos| bytes.get(pos + name.len()).copied() == Some(b'!'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_positions_only_check_the_left_boundary() {
        assert_eq!(prefix_positions("AtomicU64", "Atomic"), vec![0]);
        assert_eq!(prefix_positions("Arc<AtomicBool>", "Atomic"), vec![4]);
        assert!(prefix_positions("NonAtomicU64", "Atomic").is_empty());
    }

    #[test]
    fn fn_regions_span_bodies_and_skip_declarations() {
        let src: Vec<String> = [
            "trait T {",           // 0
            "    fn decl(&self);", // 1
            "}",                   // 2
            "fn outer() {",        // 3
            "    fn inner() {",    // 4
            "    }",               // 5
            "}",                   // 6
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let regions = fn_regions(&src);
        assert_eq!(regions, vec![(3, 6), (4, 5)]);
        assert_eq!(innermost_region(&regions, 5), Some((4, 5)));
        assert_eq!(innermost_region(&regions, 6), Some((3, 6)));
        assert_eq!(innermost_region(&regions, 1), None);
    }

    #[test]
    fn method_and_macro_matchers() {
        assert!(has_method_call("x.unwrap()", "unwrap"));
        assert!(!has_method_call("x.unwrap_or(0)", "unwrap"));
        assert!(!has_method_call("unwrap()", "unwrap"));
        assert!(has_macro_call("panic!(\"boom\")", "panic"));
        assert!(!has_macro_call("panic()", "panic"));
    }
}
