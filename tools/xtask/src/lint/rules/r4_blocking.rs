//! R4 `hot-path-blocking`: no blocking operations in `hot_path` modules
//! unless annotated `// BLOCKING-OK: <why>`.
//!
//! The paper's scaling argument (§V-B) depends on readers and the joiner
//! inner loop never descheduling: one blocked worker stalls the watermark
//! for every downstream consumer. Flagged: lock acquisition (`.lock()`),
//! blocking channel ops (`.recv()`, `.send()` and their `_timeout`
//! variants), condvar/barrier waits (`.wait()`, `.wait_timeout()`), and
//! `thread::sleep`. Non-blocking siblings (`try_lock`, `try_recv`,
//! `try_send`) pass untouched — the boundary-aware matcher does not
//! confuse them. `#[cfg(test)]` code is exempt. Where blocking is the
//! designed behaviour (a coordinator parking on a round barrier), the
//! `BLOCKING-OK:` annotation makes the choice auditable in place.

use crate::lexer::SourceFile;
use crate::lint::config::Config;
use crate::lint::rules::has_method_call;
use crate::lint::{Diagnostic, Rule};

const BLOCKING_METHODS: [&str; 6] = [
    "lock",
    "recv",
    "recv_timeout",
    "send",
    "send_timeout",
    "wait",
];

pub struct HotPathBlocking;

impl Rule for HotPathBlocking {
    fn id(&self) -> &'static str {
        "R4"
    }
    fn name(&self) -> &'static str {
        "hot-path-blocking"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        for file in files
            .iter()
            .filter(|f| f.under_any(&cfg.scope_src) && f.has_tag("hot_path"))
        {
            for (idx, mline) in file.masked_lines.iter().enumerate() {
                if file.in_test[idx] {
                    continue;
                }
                let Some(what) = blocking_op_on(mline) else {
                    continue;
                };
                if file.marker_near(idx, "BLOCKING-OK:") {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: file.rel.clone(),
                    line: idx + 1,
                    subject: what.clone(),
                    message: format!("blocking operation `{what}` in a `hot_path` module"),
                    help: "keep the hot path wait-free (try_* variants, atomics), or annotate \
                           `// BLOCKING-OK: <why blocking is the designed behaviour here>`"
                        .to_string(),
                });
            }
        }
    }
}

/// The first blocking operation on the masked line, if any.
fn blocking_op_on(mline: &str) -> Option<String> {
    if mline.contains("thread::sleep") {
        return Some("thread::sleep".to_string());
    }
    for m in BLOCKING_METHODS.iter().chain(["wait_timeout"].iter()) {
        if has_method_call(mline, m) {
            return Some(format!(".{m}()"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_blocking_not_try_variants() {
        assert_eq!(
            blocking_op_on("let g = self.mu.lock();"),
            Some(".lock()".into())
        );
        assert_eq!(blocking_op_on("let g = self.mu.try_lock();"), None);
        assert_eq!(blocking_op_on("rx.recv().ok()"), Some(".recv()".into()));
        assert_eq!(blocking_op_on("rx.try_recv().ok()"), None);
        assert_eq!(
            blocking_op_on("std::thread::sleep(d);"),
            Some("thread::sleep".into())
        );
        assert_eq!(
            blocking_op_on("self.barrier.wait(&cell, &kill);"),
            Some(".wait()".into())
        );
    }
}
