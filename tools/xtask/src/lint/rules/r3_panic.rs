//! R3 `hot-path-panic`: no panicking operations in modules tagged
//! `//! lint: hot_path` unless annotated `// PANIC-OK: <why>`.
//!
//! A panic on the reader path or in the joiner inner loop unwinds through
//! lock-free state mid-publication and poisons the whole worker team, so
//! hot-path modules must make every potential panic explicit. Flagged:
//! `.unwrap()`, `.expect(..)`, `panic!`, `todo!`, `unimplemented!`, and
//! slice indexing `expr[i]` with a non-constant index. Deliberately NOT
//! flagged: `unreachable!` and the `assert*` family (those are statements
//! of invariants, not error handling), `unwrap_or*` (non-panicking), and
//! indexing by an integer literal (`pair[0]` can be checked by eye).
//! `#[cfg(test)]` code is exempt.

use crate::lexer::SourceFile;
use crate::lint::config::Config;
use crate::lint::rules::{has_macro_call, has_method_call};
use crate::lint::{Diagnostic, Rule};

pub struct HotPathPanic;

impl Rule for HotPathPanic {
    fn id(&self) -> &'static str {
        "R3"
    }
    fn name(&self) -> &'static str {
        "hot-path-panic"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        for file in files
            .iter()
            .filter(|f| f.under_any(&cfg.scope_src) && f.has_tag("hot_path"))
        {
            for (idx, mline) in file.masked_lines.iter().enumerate() {
                if file.in_test[idx] {
                    continue;
                }
                let Some(what) = panicking_op_on(mline) else {
                    continue;
                };
                if file.marker_near(idx, "PANIC-OK:") {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.id(),
                    name: self.name(),
                    file: file.rel.clone(),
                    line: idx + 1,
                    subject: what.to_string(),
                    message: format!("`{what}` can panic in a `hot_path` module"),
                    help: "return an error / restructure to avoid the panic, or annotate \
                           `// PANIC-OK: <why this cannot fire>`"
                        .to_string(),
                });
            }
        }
    }
}

/// The first panicking operation on the masked line, if any.
fn panicking_op_on(mline: &str) -> Option<&'static str> {
    for m in ["unwrap", "expect"] {
        if has_method_call(mline, m) {
            return Some(if m == "unwrap" {
                ".unwrap()"
            } else {
                ".expect()"
            });
        }
    }
    for m in ["panic", "todo", "unimplemented"] {
        if has_macro_call(mline, m) {
            return Some(match m {
                "panic" => "panic!",
                "todo" => "todo!",
                _ => "unimplemented!",
            });
        }
    }
    if has_runtime_index(mline) {
        return Some("slice index");
    }
    None
}

/// Heuristic for panicking `expr[index]`: a `[` whose previous
/// non-space character ends an expression (identifier, `)`, `]`, or `?`),
/// whose bracket content is not a bare integer literal or a full-range
/// `[..]`. Attribute lines (`#[...]`), array types (`[u8; N]` after `:`
/// or `<`), and array literals (after `=`/`(`/`,`) all fail the
/// previous-character test and are never flagged.
fn has_runtime_index(mline: &str) -> bool {
    let bytes = mline.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let prev = mline[..i].trim_end().bytes().last();
        let indexes_expr = matches!(prev, Some(p) if crate::lexer::is_ident_byte(p) || p == b')' || p == b']' || p == b'?');
        if !indexes_expr {
            continue;
        }
        // Find the matching `]` on this line; nesting (`a[b[i]]`) counts.
        let mut depth = 0usize;
        let mut close = None;
        for (j, &c) in bytes.iter().enumerate().skip(i) {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return true; // spills to the next line: flag conservatively
        };
        let content = mline[i + 1..close].trim();
        let literal =
            !content.is_empty() && content.bytes().all(|c| c.is_ascii_digit() || c == b'_');
        if literal || content == ".." {
            continue;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_dynamic_indexing_only() {
        assert!(has_runtime_index("let x = self.head[level];"));
        assert!(has_runtime_index("pre[level].store(p);"));
        assert!(has_runtime_index("&buf[lo..hi]"));
        assert!(!has_runtime_index("let x = pair[0];"));
        assert!(!has_runtime_index("let s = &xs[..];"));
        assert!(!has_runtime_index("#[derive(Debug)]"));
        assert!(!has_runtime_index("fn f(x: [u8; 4]) {}"));
        assert!(!has_runtime_index("let a = [0u8; 16];"));
    }

    #[test]
    fn flags_panicking_calls_not_fallible_cousins() {
        assert_eq!(panicking_op_on("x.unwrap()"), Some(".unwrap()"));
        assert_eq!(panicking_op_on("x.unwrap_or_default()"), None);
        assert_eq!(panicking_op_on("x.expect(\"msg\")"), Some(".expect()"));
        assert_eq!(panicking_op_on("todo!()"), Some("todo!"));
        assert_eq!(panicking_op_on("unreachable!()"), None);
        assert_eq!(panicking_op_on("assert_eq!(a, b);"), None);
    }
}
