//! `lint.toml` — scope and allowlist configuration for `cargo xtask lint`.
//!
//! The file lives at the workspace root and uses a small, strict TOML
//! subset (the workspace is dependency-free by policy, so the parser is
//! local): `[table]` headers, `[[allow]]` array-of-tables headers,
//! `key = "string"`, and `key = ["a", "b"]` string arrays. An array may
//! span multiple lines — the value is accumulated until a line ends with
//! `]` — but each element stays a plain quoted string. Anything else is
//! a hard error — a lint whose config half-parses is worse than no lint.
//!
//! ```toml
//! [scope]
//! src = ["crates/skiplist/src", "crates/core/src"]
//!
//! [facade]
//! files = ["crates/skiplist/src/sync.rs"]
//!
//! [loom]
//! crates = ["crates/skiplist/src"]
//! models = ["crates/skiplist/tests/loom.rs"]
//!
//! [[allow]]
//! rule = "R5"
//! file = "crates/core/src/faults.rs"
//! subject = "FailureCell"
//! reason = "covered by the TSan'd fault matrix, not loom"
//! ```
//!
//! Every `[[allow]]` entry must name a `rule`, a `file`, and a non-empty
//! `reason`; `subject` narrows the suppression to diagnostics whose
//! subject contains it. Entries that suppress nothing fail the run
//! (stale suppressions rot into silent coverage holes).
//!
//! The deadlock-freedom rules (R6/R7) read two more tables:
//!
//! ```toml
//! [lockorder]
//! classes = ["failure_slot", "sink_collect"]
//! order = ["failure_slot -> sink_collect"]   # may hold lhs while taking rhs
//!
//! [topology]
//! workers = ["driver", "joiner", "collector"]
//! edges = ["driver -> joiner : bounded", "joiner -> collector : bounded"]
//! ```
//!
//! `order` must reference declared classes and form a strict partial
//! order — a cycle in the *declared* order is rejected at parse time,
//! before any source file is scanned. `edges` must reference declared
//! workers; cycle-freedom of the bounded subgraph is R7's job (so the
//! fixture suite can pin its rule id), not the parser's.
//!
//! The temporal-protocol rules (R8/R9) read two more tables:
//!
//! ```toml
//! [protocol]
//! edges = ["driver-joiner = driver -> joiner"]
//! transitions = [
//!     "driver-joiner : stream --data--> stream",
//!     "driver-joiner : stream --heartbeat--> stream",
//!     "driver-joiner : stream --finish--> closed",
//! ]
//!
//! [stamps]
//! pairs = ["wal-dispatch : wal-append < dispatch"]
//! ```
//!
//! Each `[protocol]` edge aliases a declared `[topology]` edge and
//! carries a small automaton over the message alphabet `data`, `batch`,
//! `heartbeat`, `finish`. The parser enforces the grammar's shape:
//! every alias has at least one transition, exactly one `finish`
//! transition whose target (the terminal state) has no outgoing
//! transitions, and `heartbeat` transitions are self-loops (heartbeats
//! interleave with the data grammar without changing phase; their
//! monotonicity is the runtime witness's job). Reachability of *tagged*
//! states is R8's job, so the fixture suite can pin its rule id.
//! `[stamps]` names ordered site pairs (`<name> : <pre-label> <
//! <post-label>`); the labels are documentation, the `name` is what
//! `// STAMP: <name>.{pre,post}` tags reference (R9).

/// One allowlist entry from `[[allow]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    /// Substring matched against the diagnostic's subject; empty matches
    /// every diagnostic of (rule, file).
    pub subject: String,
    pub reason: String,
}

/// One declared channel edge from `[topology] edges`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEdge {
    pub src: String,
    pub dst: String,
    /// `true` for `: bounded` (the deadlock-relevant kind), `false` for
    /// `: unbounded`.
    pub bounded: bool,
}

/// One protocol edge from `[protocol] edges`: an alias for a declared
/// topology edge, carrying a message automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoEdge {
    /// Alias referenced by `// PROTO:` tags, transitions, and the
    /// runtime witness.
    pub name: String,
    pub src: String,
    pub dst: String,
}

/// One transition from `[protocol] transitions`:
/// `"<edge> : <from> --<sym>--> <to>"`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoTransition {
    pub edge: String,
    pub from: String,
    /// Message symbol: `data`, `batch`, `heartbeat`, or `finish`.
    pub sym: String,
    pub to: String,
}

/// The message alphabet every protocol automaton ranges over.
pub const PROTO_SYMBOLS: [&str; 4] = ["data", "batch", "heartbeat", "finish"];

/// One ordered site pair from `[stamps] pairs`.
#[derive(Debug, Clone, PartialEq)]
pub struct StampPair {
    /// Name referenced by `// STAMP: <name>.{pre,post}` tags.
    pub name: String,
    /// Human label of the "before" site (documentation only).
    pub pre: String,
    /// Human label of the "after" site (documentation only).
    pub post: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories whose `.rs` files are subject to the protocol rules
    /// (R1 ordering justification, R3/R4 hot-path rules).
    pub scope_src: Vec<String>,
    /// Facade files (R2): the only files in scope allowed to name
    /// `std::sync::atomic` / `std::sync::{Mutex,RwLock,Condvar}` /
    /// `loom::sync`.
    pub facade_files: Vec<String>,
    /// Directories scanned for atomic-owning public types (R5).
    pub loom_crates: Vec<String>,
    /// Files containing loom models; a public atomic-owning type must be
    /// named in at least one of them.
    pub loom_models: Vec<String>,
    /// Named lock classes (`[lockorder] classes`); every `// LOCK:` tag
    /// must name one (R6).
    pub lock_classes: Vec<String>,
    /// Declared acquisition-order pairs `(a, b)`: a thread holding class
    /// `a` may acquire class `b`. R6 checks nested acquisitions against
    /// the transitive closure of this relation.
    pub lock_order: Vec<(String, String)>,
    /// Worker names (`[topology] workers`).
    pub topo_workers: Vec<String>,
    /// Declared channel edges (`[topology] edges`); every `// CHANNEL:`
    /// tag must name one (R7).
    pub topo_edges: Vec<ChannelEdge>,
    /// 1-based lint.toml line of the `edges = [...]` key — the anchor for
    /// R7's whole-graph diagnostics (bounded cycle, stale edge).
    pub topo_edges_line: usize,
    /// Declared protocol edges (`[protocol] edges`); every `// PROTO:`
    /// tag must name one (R8).
    pub proto_edges: Vec<ProtoEdge>,
    /// Declared automaton transitions (`[protocol] transitions`). The
    /// start state of an edge's automaton is the `from` state of its
    /// first transition.
    pub proto_transitions: Vec<ProtoTransition>,
    /// 1-based lint.toml line of the `[protocol] edges` key — the anchor
    /// for R8's whole-declaration diagnostics (stale edge).
    pub proto_edges_line: usize,
    /// Declared ordered site pairs (`[stamps] pairs`); every `// STAMP:`
    /// tag must name one (R9).
    pub stamp_pairs: Vec<StampPair>,
    /// 1-based lint.toml line of the `[stamps] pairs` key — the anchor
    /// for R9's whole-declaration diagnostics (stale pair).
    pub stamp_pairs_line: usize,
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Parses the strict TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // (table, key) -> values routing happens as lines stream by.
        let mut table = String::new();
        let raw_lines: Vec<&str> = text.lines().collect();
        let mut idx = 0;
        while idx < raw_lines.len() {
            let lineno = idx + 1;
            let mut line = strip_toml_comment(raw_lines[idx]).trim().to_string();
            idx += 1;
            if line.is_empty() {
                continue;
            }
            // Multi-line array: accumulate until the closing `]`. Anchor
            // diagnostics at the key's line.
            if line.contains("= [") && !line.ends_with(']') {
                while idx < raw_lines.len() {
                    let cont = strip_toml_comment(raw_lines[idx]).trim().to_string();
                    idx += 1;
                    if !cont.is_empty() {
                        line.push(' ');
                        line.push_str(&cont);
                    }
                    if cont.ends_with(']') {
                        break;
                    }
                }
                if !line.ends_with(']') {
                    return Err(format!("lint.toml:{lineno}: unterminated `[` array"));
                }
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if name.trim() != "allow" {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown array-of-tables `[[{}]]` (only `[[allow]]`)",
                        name.trim()
                    ));
                }
                cfg.allow.push(AllowEntry {
                    rule: String::new(),
                    file: String::new(),
                    subject: String::new(),
                    reason: String::new(),
                });
                table = "allow".to_string();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                match name {
                    "scope" | "facade" | "loom" | "lockorder" | "topology" | "protocol"
                    | "stamps" => table = name.to_string(),
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown table `[{other}]`"));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match (table.as_str(), key) {
                ("scope", "src") => cfg.scope_src = parse_string_array(value, lineno)?,
                ("facade", "files") => cfg.facade_files = parse_string_array(value, lineno)?,
                ("loom", "crates") => cfg.loom_crates = parse_string_array(value, lineno)?,
                ("loom", "models") => cfg.loom_models = parse_string_array(value, lineno)?,
                ("lockorder", "classes") => cfg.lock_classes = parse_string_array(value, lineno)?,
                ("lockorder", "order") => {
                    for s in parse_string_array(value, lineno)? {
                        cfg.lock_order.push(parse_order_pair(&s, lineno)?);
                    }
                }
                ("topology", "workers") => cfg.topo_workers = parse_string_array(value, lineno)?,
                ("topology", "edges") => {
                    cfg.topo_edges_line = lineno;
                    for s in parse_string_array(value, lineno)? {
                        cfg.topo_edges.push(parse_channel_edge(&s, lineno)?);
                    }
                }
                ("protocol", "edges") => {
                    cfg.proto_edges_line = lineno;
                    for s in parse_string_array(value, lineno)? {
                        cfg.proto_edges.push(parse_proto_edge(&s, lineno)?);
                    }
                }
                ("protocol", "transitions") => {
                    for s in parse_string_array(value, lineno)? {
                        cfg.proto_transitions
                            .push(parse_proto_transition(&s, lineno)?);
                    }
                }
                ("stamps", "pairs") => {
                    cfg.stamp_pairs_line = lineno;
                    for s in parse_string_array(value, lineno)? {
                        cfg.stamp_pairs.push(parse_stamp_pair(&s, lineno)?);
                    }
                }
                ("allow", k) => {
                    let entry = cfg
                        .allow
                        .last_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key before `[[allow]]`"))?;
                    let v = parse_string(value, lineno)?;
                    match k {
                        "rule" => entry.rule = v,
                        "file" => entry.file = v,
                        "subject" => entry.subject = v,
                        "reason" => entry.reason = v,
                        other => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown allow key `{other}` \
                                 (rule/file/subject/reason)"
                            ));
                        }
                    }
                }
                (t, k) => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{k}` in `[{t}]`"));
                }
            }
        }
        for (i, e) in cfg.allow.iter().enumerate() {
            if e.rule.is_empty() || e.file.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "lint.toml: [[allow]] entry #{} must set `rule`, `file`, and a \
                     non-empty `reason`",
                    i + 1
                ));
            }
        }
        cfg.validate_lockorder()?;
        cfg.validate_topology()?;
        cfg.validate_protocol()?;
        cfg.validate_stamps()?;
        Ok(cfg)
    }

    /// True if a thread holding `held` may acquire `want` under the
    /// declared order — i.e. `held -> want` is in the transitive closure
    /// of `[lockorder] order`. Same-class re-entrancy is never allowed.
    pub fn lock_order_allows(&self, held: &str, want: &str) -> bool {
        if held == want {
            return false;
        }
        // DFS over the declared pairs; the graph is tiny (a handful of
        // classes) and already known to be acyclic.
        let mut stack = vec![held];
        let mut seen = vec![held];
        while let Some(cur) = stack.pop() {
            for (a, b) in &self.lock_order {
                if a == cur && !seen.contains(&b.as_str()) {
                    if b == want {
                        return true;
                    }
                    seen.push(b);
                    stack.push(b);
                }
            }
        }
        false
    }

    fn validate_lockorder(&self) -> Result<(), String> {
        check_unique("lockorder.classes", &self.lock_classes)?;
        for (a, b) in &self.lock_order {
            for c in [a, b] {
                if !self.lock_classes.contains(c) {
                    return Err(format!(
                        "lint.toml: [lockorder] order names undeclared class `{c}` \
                         (declare it in `classes`)"
                    ));
                }
            }
            if a == b {
                return Err(format!(
                    "lint.toml: [lockorder] order pair `{a} -> {b}` is reflexive — \
                     same-class re-entrancy is never allowed"
                ));
            }
        }
        // The declared order must itself be a strict partial order: a
        // cycle would make every nesting "declared" and the rule vacuous.
        if let Some(cycle) = find_cycle(&self.lock_classes, &|a, b| {
            self.lock_order.iter().any(|(x, y)| x == a && y == b)
        }) {
            return Err(format!(
                "lint.toml: [lockorder] order contains a cycle: {}",
                cycle.join(" -> ")
            ));
        }
        Ok(())
    }

    fn validate_topology(&self) -> Result<(), String> {
        check_unique("topology.workers", &self.topo_workers)?;
        for e in &self.topo_edges {
            for w in [&e.src, &e.dst] {
                if !self.topo_workers.contains(w) {
                    return Err(format!(
                        "lint.toml: [topology] edges names undeclared worker `{w}` \
                         (declare it in `workers`)"
                    ));
                }
            }
        }
        for (i, e) in self.topo_edges.iter().enumerate() {
            if self.topo_edges[..i]
                .iter()
                .any(|p| p.src == e.src && p.dst == e.dst)
            {
                return Err(format!(
                    "lint.toml: [topology] edge `{} -> {}` is declared twice",
                    e.src, e.dst
                ));
            }
        }
        Ok(())
    }

    fn validate_protocol(&self) -> Result<(), String> {
        for (i, e) in self.proto_edges.iter().enumerate() {
            if e.name.is_empty()
                || e.name
                    .contains(|c: char| c.is_whitespace() || c == '.' || c == ':')
            {
                return Err(format!(
                    "lint.toml: [protocol] edge alias `{}` must be non-empty and free of \
                     whitespace, `.`, and `:` (it is referenced by `// PROTO: <edge>.<state>` \
                     tags)",
                    e.name
                ));
            }
            if self.proto_edges[..i].iter().any(|p| p.name == e.name) {
                return Err(format!(
                    "lint.toml: [protocol] edge alias `{}` is declared twice",
                    e.name
                ));
            }
            if !self
                .topo_edges
                .iter()
                .any(|t| t.src == e.src && t.dst == e.dst)
            {
                return Err(format!(
                    "lint.toml: [protocol] edge `{}` aliases `{} -> {}`, which is not a \
                     declared [topology] edge",
                    e.name, e.src, e.dst
                ));
            }
        }
        for (i, t) in self.proto_transitions.iter().enumerate() {
            if self.proto_edge(&t.edge).is_none() {
                return Err(format!(
                    "lint.toml: [protocol] transition references undeclared edge `{}`",
                    t.edge
                ));
            }
            if !PROTO_SYMBOLS.contains(&t.sym.as_str()) {
                return Err(format!(
                    "lint.toml: [protocol] transition symbol `{}` is not in the alphabet \
                     ({})",
                    t.sym,
                    PROTO_SYMBOLS.join("/")
                ));
            }
            if t.sym == "heartbeat" && t.from != t.to {
                return Err(format!(
                    "lint.toml: [protocol] heartbeat transition `{} : {} --heartbeat--> {}` \
                     must be a self-loop (heartbeats interleave without changing phase)",
                    t.edge, t.from, t.to
                ));
            }
            if self.proto_transitions[..i].iter().any(|p| p == t) {
                return Err(format!(
                    "lint.toml: [protocol] transition `{} : {} --{}--> {}` is declared twice",
                    t.edge, t.from, t.sym, t.to
                ));
            }
        }
        for e in &self.proto_edges {
            let trans: Vec<&ProtoTransition> = self
                .proto_transitions
                .iter()
                .filter(|t| t.edge == e.name)
                .collect();
            if trans.is_empty() {
                return Err(format!(
                    "lint.toml: [protocol] edge `{}` has no transitions",
                    e.name
                ));
            }
            let finishes: Vec<&&ProtoTransition> =
                trans.iter().filter(|t| t.sym == "finish").collect();
            if finishes.len() != 1 {
                return Err(format!(
                    "lint.toml: [protocol] edge `{}` must have exactly one `finish` \
                     transition, found {}",
                    e.name,
                    finishes.len()
                ));
            }
            let terminal = &finishes[0].to;
            if trans.iter().any(|t| &t.from == terminal) {
                return Err(format!(
                    "lint.toml: [protocol] edge `{}`: terminal state `{terminal}` must have \
                     no outgoing transitions",
                    e.name
                ));
            }
        }
        Ok(())
    }

    fn validate_stamps(&self) -> Result<(), String> {
        for (i, p) in self.stamp_pairs.iter().enumerate() {
            if p.name.is_empty() || p.name.contains(|c: char| c.is_whitespace() || c == '.') {
                return Err(format!(
                    "lint.toml: [stamps] pair name `{}` must be non-empty and free of \
                     whitespace and `.` (it is referenced by `// STAMP: <name>.pre/post` tags)",
                    p.name
                ));
            }
            if p.pre.is_empty() || p.post.is_empty() {
                return Err(format!(
                    "lint.toml: [stamps] pair `{}` must label both sites (`name : pre < post`)",
                    p.name
                ));
            }
            if self.stamp_pairs[..i].iter().any(|q| q.name == p.name) {
                return Err(format!(
                    "lint.toml: [stamps] pair `{}` is declared twice",
                    p.name
                ));
            }
        }
        Ok(())
    }

    /// The declared protocol edge named `name`, if any.
    pub fn proto_edge(&self, name: &str) -> Option<&ProtoEdge> {
        self.proto_edges.iter().find(|e| e.name == name)
    }

    /// The start state of `edge`'s automaton: the `from` state of its
    /// first declared transition.
    pub fn proto_start(&self, edge: &str) -> Option<&str> {
        self.proto_transitions
            .iter()
            .find(|t| t.edge == edge)
            .map(|t| t.from.as_str())
    }

    /// The terminal state of `edge`'s automaton: the target of its
    /// unique `finish` transition.
    pub fn proto_terminal(&self, edge: &str) -> Option<&str> {
        self.proto_transitions
            .iter()
            .find(|t| t.edge == edge && t.sym == "finish")
            .map(|t| t.to.as_str())
    }

    /// All states of `edge`'s automaton, in declaration order.
    pub fn proto_states(&self, edge: &str) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in self.proto_transitions.iter().filter(|t| t.edge == edge) {
            for s in [t.from.as_str(), t.to.as_str()] {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// True if `state` is reachable from `edge`'s start state.
    pub fn proto_reachable(&self, edge: &str, state: &str) -> bool {
        let Some(start) = self.proto_start(edge) else {
            return false;
        };
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(cur) = stack.pop() {
            if cur == state {
                return true;
            }
            for t in &self.proto_transitions {
                if t.edge == edge && t.from == cur && !seen.contains(&t.to.as_str()) {
                    seen.push(&t.to);
                    stack.push(&t.to);
                }
            }
        }
        false
    }

    /// True if some transition on `edge` with symbol `sym` enters `state`.
    pub fn proto_enters(&self, edge: &str, sym: &str, state: &str) -> bool {
        self.proto_transitions
            .iter()
            .any(|t| t.edge == edge && t.sym == sym && t.to == state)
    }

    /// The declared stamp pair named `name`, if any.
    pub fn stamp_pair(&self, name: &str) -> Option<&StampPair> {
        self.stamp_pairs.iter().find(|p| p.name == name)
    }
}

/// A cycle (as `a -> b -> ... -> a`) in the directed graph over `nodes`
/// with edge predicate `edge`, if one exists.
pub fn find_cycle(nodes: &[String], edge: &dyn Fn(&str, &str) -> bool) -> Option<Vec<String>> {
    // Colored DFS: 0 = unvisited, 1 = on the current path, 2 = done.
    fn dfs(
        n: usize,
        nodes: &[String],
        edge: &dyn Fn(&str, &str) -> bool,
        color: &mut [u8],
        path: &mut Vec<usize>,
    ) -> Option<Vec<String>> {
        color[n] = 1;
        path.push(n);
        for (m, to) in nodes.iter().enumerate() {
            if !edge(&nodes[n], to) {
                continue;
            }
            if color[m] == 1 {
                let start = path.iter().position(|&p| p == m).unwrap_or(0);
                let mut cycle: Vec<String> =
                    path[start..].iter().map(|&p| nodes[p].clone()).collect();
                cycle.push(nodes[m].clone());
                return Some(cycle);
            }
            if color[m] == 0 {
                if let Some(c) = dfs(m, nodes, edge, color, path) {
                    return Some(c);
                }
            }
        }
        path.pop();
        color[n] = 2;
        None
    }
    let mut color = vec![0u8; nodes.len()];
    let mut path = Vec::new();
    for n in 0..nodes.len() {
        if color[n] == 0 {
            if let Some(c) = dfs(n, nodes, edge, &mut color, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

fn check_unique(what: &str, names: &[String]) -> Result<(), String> {
    for (i, n) in names.iter().enumerate() {
        if names[..i].contains(n) {
            return Err(format!("lint.toml: [{what}] declares `{n}` twice"));
        }
    }
    Ok(())
}

/// Parses `"a -> b"` into `(a, b)`.
fn parse_order_pair(s: &str, lineno: usize) -> Result<(String, String), String> {
    let (a, b) = s.split_once("->").ok_or_else(|| {
        format!("lint.toml:{lineno}: expected `\"class_a -> class_b\"`, got `{s}`")
    })?;
    let (a, b) = (a.trim(), b.trim());
    if a.is_empty() || b.is_empty() || b.contains("->") {
        return Err(format!(
            "lint.toml:{lineno}: expected `\"class_a -> class_b\"`, got `{s}`"
        ));
    }
    Ok((a.to_string(), b.to_string()))
}

/// Parses `"src -> dst : bounded"` (or `: unbounded`) into a [`ChannelEdge`].
fn parse_channel_edge(s: &str, lineno: usize) -> Result<ChannelEdge, String> {
    let err =
        || format!("lint.toml:{lineno}: expected `\"src -> dst : bounded|unbounded\"`, got `{s}`");
    let (pair, kind) = s.rsplit_once(':').ok_or_else(err)?;
    let bounded = match kind.trim() {
        "bounded" => true,
        "unbounded" => false,
        _ => return Err(err()),
    };
    let (src, dst) = parse_order_pair(pair.trim(), lineno).map_err(|_| err())?;
    Ok(ChannelEdge { src, dst, bounded })
}

/// Parses `"alias = src -> dst"` into a [`ProtoEdge`].
fn parse_proto_edge(s: &str, lineno: usize) -> Result<ProtoEdge, String> {
    let err = || format!("lint.toml:{lineno}: expected `\"alias = src -> dst\"`, got `{s}`");
    let (name, pair) = s.split_once('=').ok_or_else(err)?;
    let name = name.trim();
    if name.is_empty() {
        return Err(err());
    }
    let (src, dst) = parse_order_pair(pair.trim(), lineno).map_err(|_| err())?;
    Ok(ProtoEdge {
        name: name.to_string(),
        src,
        dst,
    })
}

/// Parses `"edge : from --sym--> to"` into a [`ProtoTransition`].
fn parse_proto_transition(s: &str, lineno: usize) -> Result<ProtoTransition, String> {
    let err = || format!("lint.toml:{lineno}: expected `\"edge : from --sym--> to\"`, got `{s}`");
    let (edge, rest) = s.split_once(':').ok_or_else(err)?;
    let (from, rest) = rest.split_once("--").ok_or_else(err)?;
    let (sym, to) = rest.split_once("-->").ok_or_else(err)?;
    let (edge, from, sym, to) = (edge.trim(), from.trim(), sym.trim(), to.trim());
    if edge.is_empty() || from.is_empty() || sym.is_empty() || to.is_empty() || to.contains(' ') {
        return Err(err());
    }
    Ok(ProtoTransition {
        edge: edge.to_string(),
        from: from.to_string(),
        sym: sym.to_string(),
        to: to.to_string(),
    })
}

/// Parses `"name : pre < post"` into a [`StampPair`].
fn parse_stamp_pair(s: &str, lineno: usize) -> Result<StampPair, String> {
    let err = || format!("lint.toml:{lineno}: expected `\"name : pre < post\"`, got `{s}`");
    let (name, rest) = s.split_once(':').ok_or_else(err)?;
    let (pre, post) = rest.split_once('<').ok_or_else(err)?;
    let (name, pre, post) = (name.trim(), pre.trim(), post.trim());
    if name.is_empty() || pre.is_empty() || post.is_empty() || post.contains('<') {
        return Err(err());
    }
    Ok(StampPair {
        name: name.to_string(),
        pre: pre.to_string(),
        post: post.to_string(),
    })
}

/// Drops a trailing `# comment` that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a quoted string, got `{v}`"))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a single-line `[\"...\"]` array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[scope]
src = ["a/src", "b/src"] # trailing comment

[facade]
files = ["a/src/sync.rs"]

[loom]
crates = ["a/src"]
models = ["a/tests/loom.rs"]

[[allow]]
rule = "R5"
file = "b/src/x.rs"
subject = "Foo"
reason = "covered elsewhere"
"#,
        )
        .unwrap();
        assert_eq!(cfg.scope_src, vec!["a/src", "b/src"]);
        assert_eq!(cfg.facade_files, vec!["a/src/sync.rs"]);
        assert_eq!(cfg.loom_models, vec!["a/tests/loom.rs"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].subject, "Foo");
    }

    #[test]
    fn rejects_unknown_tables_and_reasonless_allows() {
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[scope]\nwrong = \"x\"\n").is_err());
        let e = Config::parse("[[allow]]\nrule = \"R1\"\nfile = \"f.rs\"\n").unwrap_err();
        assert!(e.contains("reason"), "{e}");
    }

    #[test]
    fn parses_lockorder_and_topology() {
        let cfg = Config::parse(
            r#"
[lockorder]
classes = ["a", "b", "c"]
order = ["a -> b", "b -> c"]

[topology]
workers = ["driver", "joiner", "collector"]
edges = ["driver -> joiner : bounded", "joiner -> collector : unbounded"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.lock_classes, vec!["a", "b", "c"]);
        assert_eq!(
            cfg.lock_order,
            vec![("a".into(), "b".into()), ("b".into(), "c".into())]
        );
        assert_eq!(cfg.topo_workers.len(), 3);
        assert_eq!(
            cfg.topo_edges[0],
            ChannelEdge {
                src: "driver".into(),
                dst: "joiner".into(),
                bounded: true
            }
        );
        assert!(!cfg.topo_edges[1].bounded);
        assert_eq!(cfg.topo_edges_line, 8);
        // Transitive closure: a -> c holds, c -> a does not, a -> a never.
        assert!(cfg.lock_order_allows("a", "c"));
        assert!(!cfg.lock_order_allows("c", "a"));
        assert!(!cfg.lock_order_allows("a", "a"));
    }

    #[test]
    fn rejects_bad_lockorder_declarations() {
        let e =
            Config::parse("[lockorder]\nclasses = [\"a\"]\norder = [\"a -> b\"]\n").unwrap_err();
        assert!(e.contains("undeclared class `b`"), "{e}");
        let e = Config::parse(
            "[lockorder]\nclasses = [\"a\", \"b\"]\norder = [\"a -> b\", \"b -> a\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("cycle"), "{e}");
        let e =
            Config::parse("[lockorder]\nclasses = [\"a\"]\norder = [\"a -> a\"]\n").unwrap_err();
        assert!(e.contains("reflexive"), "{e}");
        let e = Config::parse("[lockorder]\nclasses = [\"a\", \"a\"]\n").unwrap_err();
        assert!(e.contains("twice"), "{e}");
    }

    #[test]
    fn rejects_bad_topology_declarations() {
        let e = Config::parse("[topology]\nworkers = [\"d\"]\nedges = [\"d -> j : bounded\"]\n")
            .unwrap_err();
        assert!(e.contains("undeclared worker `j`"), "{e}");
        let e = Config::parse("[topology]\nworkers = [\"d\", \"j\"]\nedges = [\"d -> j\"]\n")
            .unwrap_err();
        assert!(e.contains("bounded|unbounded"), "{e}");
        let e = Config::parse(
            "[topology]\nworkers = [\"d\", \"j\"]\nedges = [\"d -> j : bounded\", \"d -> j : bounded\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("declared twice"), "{e}");
    }

    /// A topology plus protocol declaration shared by the R8/R9 tests.
    fn proto_preamble() -> &'static str {
        r#"
[topology]
workers = ["driver", "joiner"]
edges = ["driver -> joiner : bounded"]

[protocol]
edges = ["dj = driver -> joiner"]
"#
    }

    #[test]
    fn parses_protocol_and_stamps() {
        let cfg = Config::parse(
            r#"
[topology]
workers = ["driver", "joiner"]
edges = ["driver -> joiner : bounded"]

[protocol]
edges = ["dj = driver -> joiner"]
transitions = [
    "dj : stream --data--> stream",
    "dj : stream --batch--> stream",
    "dj : stream --heartbeat--> stream",
    "dj : stream --finish--> closed",
]

[stamps]
pairs = ["wal-dispatch : wal-append < dispatch"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.proto_edges.len(), 1);
        assert_eq!(cfg.proto_edges[0].name, "dj");
        assert_eq!(cfg.proto_edges_line, 7);
        assert_eq!(cfg.proto_transitions.len(), 4);
        assert_eq!(cfg.proto_start("dj"), Some("stream"));
        assert_eq!(cfg.proto_terminal("dj"), Some("closed"));
        assert_eq!(cfg.proto_states("dj"), vec!["stream", "closed"]);
        assert!(cfg.proto_reachable("dj", "closed"));
        assert!(!cfg.proto_reachable("dj", "nowhere"));
        assert!(cfg.proto_enters("dj", "data", "stream"));
        assert!(cfg.proto_enters("dj", "finish", "closed"));
        assert!(!cfg.proto_enters("dj", "data", "closed"));
        assert_eq!(
            cfg.stamp_pair("wal-dispatch"),
            Some(&StampPair {
                name: "wal-dispatch".into(),
                pre: "wal-append".into(),
                post: "dispatch".into(),
            })
        );
        assert_eq!(cfg.stamp_pairs_line, 16);
    }

    #[test]
    fn rejects_bad_protocol_declarations() {
        // Alias must point at a declared topology edge.
        let e = Config::parse(
            "[topology]\nworkers = [\"d\", \"j\"]\nedges = [\"d -> j : bounded\"]\n\
             [protocol]\nedges = [\"x = j -> d\"]\ntransitions = [\"x : s --finish--> c\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("not a declared [topology] edge"), "{e}");
        // Edge with no transitions.
        let e = Config::parse(proto_preamble()).unwrap_err();
        assert!(e.contains("no transitions"), "{e}");
        // Exactly one finish.
        let e = Config::parse(&format!(
            "{}transitions = [\"dj : s --data--> s\"]\n",
            proto_preamble()
        ))
        .unwrap_err();
        assert!(e.contains("exactly one `finish`"), "{e}");
        let e = Config::parse(&format!(
            "{}transitions = [\"dj : s --finish--> c\", \"dj : s --finish--> d\"]\n",
            proto_preamble()
        ))
        .unwrap_err();
        assert!(e.contains("exactly one `finish`"), "{e}");
        // Terminal state must be a sink.
        let e = Config::parse(&format!(
            "{}transitions = [\"dj : s --finish--> c\", \"dj : c --data--> s\"]\n",
            proto_preamble()
        ))
        .unwrap_err();
        assert!(e.contains("no outgoing transitions"), "{e}");
        // Heartbeats are self-loops.
        let e = Config::parse(&format!(
            "{}transitions = [\"dj : s --heartbeat--> t\", \"dj : s --finish--> c\"]\n",
            proto_preamble()
        ))
        .unwrap_err();
        assert!(e.contains("self-loop"), "{e}");
        // Unknown symbol.
        let e = Config::parse(&format!(
            "{}transitions = [\"dj : s --nack--> s\", \"dj : s --finish--> c\"]\n",
            proto_preamble()
        ))
        .unwrap_err();
        assert!(e.contains("not in the alphabet"), "{e}");
        // Transition on an undeclared alias.
        let e = Config::parse(&format!(
            "{}transitions = [\"dj : s --finish--> c\", \"zz : s --finish--> c\"]\n",
            proto_preamble()
        ))
        .unwrap_err();
        assert!(e.contains("undeclared edge `zz`"), "{e}");
        // Alias names must be tag-safe.
        let e = Config::parse(
            "[topology]\nworkers = [\"d\", \"j\"]\nedges = [\"d -> j : bounded\"]\n\
             [protocol]\nedges = [\"a.b = d -> j\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("free of"), "{e}");
    }

    #[test]
    fn rejects_bad_stamp_declarations() {
        let e = Config::parse("[stamps]\npairs = [\"a.b : x < y\"]\n").unwrap_err();
        assert!(e.contains("free of"), "{e}");
        let e = Config::parse("[stamps]\npairs = [\"p : x\"]\n").unwrap_err();
        assert!(e.contains("pre < post"), "{e}");
        let e = Config::parse("[stamps]\npairs = [\"p : x < y\", \"p : z < w\"]\n").unwrap_err();
        assert!(e.contains("declared twice"), "{e}");
    }

    #[test]
    fn multi_line_arrays_accumulate_and_anchor_at_the_key() {
        let cfg = Config::parse(
            "[scope]\nsrc = [\n    \"a/src\",\n    \"b/src\",\n]\n\n[facade]\nfiles = [\"f.rs\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.scope_src, vec!["a/src", "b/src"]);
        assert_eq!(cfg.facade_files, vec!["f.rs"]);
        let e = Config::parse("[scope]\nsrc = [\n    \"a/src\",\n").unwrap_err();
        assert!(e.contains("unterminated"), "{e}");
        assert!(e.contains(":2:"), "anchored at the key line: {e}");
    }

    #[test]
    fn find_cycle_reports_the_path() {
        let nodes: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let edges = [("x", "y"), ("y", "z"), ("z", "x")];
        let cycle = find_cycle(&nodes, &|a, b| edges.contains(&(a, b))).unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(find_cycle(&nodes, &|a, b| (a, b) == ("x", "y")).is_none());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg =
            Config::parse("[[allow]]\nrule = \"R1\"\nfile = \"f.rs\"\nreason = \"issue #7\"\n")
                .unwrap();
        assert_eq!(cfg.allow[0].reason, "issue #7");
    }
}
