//! `lint.toml` — scope and allowlist configuration for `cargo xtask lint`.
//!
//! The file lives at the workspace root and uses a small, strict TOML
//! subset (the workspace is dependency-free by policy, so the parser is
//! local): `[table]` headers, `[[allow]]` array-of-tables headers,
//! `key = "string"`, and `key = ["a", "b"]` single-line string arrays.
//! Anything else is a hard error — a lint whose config half-parses is
//! worse than no lint.
//!
//! ```toml
//! [scope]
//! src = ["crates/skiplist/src", "crates/core/src"]
//!
//! [facade]
//! files = ["crates/skiplist/src/sync.rs"]
//!
//! [loom]
//! crates = ["crates/skiplist/src"]
//! models = ["crates/skiplist/tests/loom.rs"]
//!
//! [[allow]]
//! rule = "R5"
//! file = "crates/core/src/faults.rs"
//! subject = "FailureCell"
//! reason = "covered by the TSan'd fault matrix, not loom"
//! ```
//!
//! Every `[[allow]]` entry must name a `rule`, a `file`, and a non-empty
//! `reason`; `subject` narrows the suppression to diagnostics whose
//! subject contains it. Entries that suppress nothing fail the run
//! (stale suppressions rot into silent coverage holes).

/// One allowlist entry from `[[allow]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    /// Substring matched against the diagnostic's subject; empty matches
    /// every diagnostic of (rule, file).
    pub subject: String,
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories whose `.rs` files are subject to the protocol rules
    /// (R1 ordering justification, R3/R4 hot-path rules).
    pub scope_src: Vec<String>,
    /// Facade files (R2): the only files in scope allowed to name
    /// `std::sync::atomic` / `std::sync::{Mutex,RwLock,Condvar}` /
    /// `loom::sync`.
    pub facade_files: Vec<String>,
    /// Directories scanned for atomic-owning public types (R5).
    pub loom_crates: Vec<String>,
    /// Files containing loom models; a public atomic-owning type must be
    /// named in at least one of them.
    pub loom_models: Vec<String>,
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Parses the strict TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // (table, key) -> values routing happens as lines stream by.
        let mut table = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if name.trim() != "allow" {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown array-of-tables `[[{}]]` (only `[[allow]]`)",
                        name.trim()
                    ));
                }
                cfg.allow.push(AllowEntry {
                    rule: String::new(),
                    file: String::new(),
                    subject: String::new(),
                    reason: String::new(),
                });
                table = "allow".to_string();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                match name {
                    "scope" | "facade" | "loom" => table = name.to_string(),
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown table `[{other}]`"));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match (table.as_str(), key) {
                ("scope", "src") => cfg.scope_src = parse_string_array(value, lineno)?,
                ("facade", "files") => cfg.facade_files = parse_string_array(value, lineno)?,
                ("loom", "crates") => cfg.loom_crates = parse_string_array(value, lineno)?,
                ("loom", "models") => cfg.loom_models = parse_string_array(value, lineno)?,
                ("allow", k) => {
                    let entry = cfg
                        .allow
                        .last_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key before `[[allow]]`"))?;
                    let v = parse_string(value, lineno)?;
                    match k {
                        "rule" => entry.rule = v,
                        "file" => entry.file = v,
                        "subject" => entry.subject = v,
                        "reason" => entry.reason = v,
                        other => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown allow key `{other}` \
                                 (rule/file/subject/reason)"
                            ));
                        }
                    }
                }
                (t, k) => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{k}` in `[{t}]`"));
                }
            }
        }
        for (i, e) in cfg.allow.iter().enumerate() {
            if e.rule.is_empty() || e.file.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "lint.toml: [[allow]] entry #{} must set `rule`, `file`, and a \
                     non-empty `reason`",
                    i + 1
                ));
            }
        }
        Ok(cfg)
    }
}

/// Drops a trailing `# comment` that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a quoted string, got `{v}`"))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a single-line `[\"...\"]` array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[scope]
src = ["a/src", "b/src"] # trailing comment

[facade]
files = ["a/src/sync.rs"]

[loom]
crates = ["a/src"]
models = ["a/tests/loom.rs"]

[[allow]]
rule = "R5"
file = "b/src/x.rs"
subject = "Foo"
reason = "covered elsewhere"
"#,
        )
        .unwrap();
        assert_eq!(cfg.scope_src, vec!["a/src", "b/src"]);
        assert_eq!(cfg.facade_files, vec!["a/src/sync.rs"]);
        assert_eq!(cfg.loom_models, vec!["a/tests/loom.rs"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].subject, "Foo");
    }

    #[test]
    fn rejects_unknown_tables_and_reasonless_allows() {
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[scope]\nwrong = \"x\"\n").is_err());
        let e = Config::parse("[[allow]]\nrule = \"R1\"\nfile = \"f.rs\"\n").unwrap_err();
        assert!(e.contains("reason"), "{e}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg =
            Config::parse("[[allow]]\nrule = \"R1\"\nfile = \"f.rs\"\nreason = \"issue #7\"\n")
                .unwrap();
        assert_eq!(cfg.allow[0].reason, "issue #7");
    }
}
