//! Workspace task runner library: the shared lexer plus the two static
//! analysis passes (`unsafe-audit`, `lint`). The binary in `main.rs` is a
//! thin dispatcher; the logic lives here so the integration tests can
//! drive the lint engine against fixture files without spawning a
//! process.

pub mod audit;
pub mod lexer;
pub mod lint;
pub mod lockdep;
pub mod obslog;
pub mod proto;

use std::path::{Path, PathBuf};

/// The workspace root, two levels up from `tools/xtask`.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("tools/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, skipping build output,
/// VCS metadata, and the lint test fixtures (fixtures violate the rules
/// on purpose; only the lint tests should ever parse them).
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
