//! Shared comment/string-aware Rust lexing for the xtask analysis passes.
//!
//! Both the unsafe audit and the concurrency-protocol lint need the same
//! view of a source file: the *code* with comments and string/char literal
//! contents blanked out (so keyword scans never match prose or literals),
//! next to the *original* lines (so justification markers like `SAFETY:`
//! or `ORDERING:` can be found in the comments). [`SourceFile`] computes
//! that view once per file; the passes share it instead of each carrying
//! its own string/comment state machine.

/// One parsed source file: original text, masked text, and the derived
/// line-level structure the rules consume.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes (used in diagnostics and
    /// matched against `lint.toml` scopes/allowlist entries).
    pub rel: String,
    /// Original lines, for diagnostics display.
    pub lines: Vec<String>,
    /// Masked lines: same shape as `lines`, but comment bodies and
    /// string/char literal contents are spaces. Keyword scans use these.
    pub masked_lines: Vec<String>,
    /// Comment-visible lines: string/char literal contents are spaces but
    /// comment text survives. Marker (`SAFETY:`, `ORDERING:`, `LOCK:`, …)
    /// and `//! lint:` tag lookups use these, so marker text quoted inside
    /// a string or a multi-line raw string can never satisfy a rule.
    pub comment_lines: Vec<String>,
    /// Per line: true if the line sits inside a `#[cfg(test)] mod { .. }`
    /// region. Protocol rules skip test code — tests deliberately use raw
    /// std primitives, panics, and blocking calls.
    pub in_test: Vec<bool>,
    /// Per line: `(byte_start, byte_end)` of the line in the original
    /// text, end exclusive of the newline. Diagnostics carry line
    /// numbers; the `--json` renderer turns them into byte spans for CI
    /// annotation tooling.
    pub line_spans: Vec<(usize, usize)>,
    /// Module-level lint tags declared as `//! lint: tag_a, tag_b`.
    pub tags: Vec<String>,
}

impl SourceFile {
    /// Lexes `text` into a [`SourceFile`]. `rel` should be the
    /// workspace-relative path with forward slashes.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let views = mask_views(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = views.masked.lines().map(str::to_string).collect();
        let comment_lines: Vec<String> = views.comments.lines().map(str::to_string).collect();
        let in_test = test_regions(&masked_lines);
        let tags = lint_tags(&comment_lines);
        let line_spans = line_spans(text);
        SourceFile {
            rel: rel.to_string(),
            lines,
            masked_lines,
            comment_lines,
            in_test,
            tags,
            line_spans,
        }
    }

    /// Byte span of 1-based line `lineno` in the original text, if the
    /// file has that many lines.
    pub fn line_span(&self, lineno: usize) -> Option<(usize, usize)> {
        lineno
            .checked_sub(1)
            .and_then(|i| self.line_spans.get(i))
            .copied()
    }

    /// Whether the module declared `//! lint: <tag>`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// True if line `idx` (0-based) carries `marker` on the statement it
    /// belongs to — the line itself, an earlier line of the same
    /// multi-line statement, or the contiguous run of comment/attribute
    /// lines directly above the statement's first line. Scans the
    /// comment-visible view, so a marker quoted inside a string literal
    /// never counts.
    pub fn marker_near(&self, idx: usize, marker: &str) -> bool {
        self.marker_text(idx, marker).is_some()
    }

    /// Like [`marker_near`](Self::marker_near), but returns the text
    /// following the first occurrence of `marker` in the window (trimmed),
    /// for markers that carry an argument (`// LOCK: <class>`,
    /// `// CHANNEL: <src> -> <dst>`).
    pub fn marker_text(&self, idx: usize, marker: &str) -> Option<String> {
        let start = self.stmt_start(idx);
        for l in &self.comment_lines[start..=idx] {
            if let Some(pos) = l.find(marker) {
                return Some(l[pos + marker.len()..].trim().to_string());
            }
        }
        comment_run_text(&self.comment_lines, start, marker)
    }

    /// First line of the statement containing line `idx`: walks upward
    /// until the previous masked line ends a statement (`;`, `{`, `}`),
    /// is blank, or is pure comment. A heuristic, but a conservative one:
    /// over-extending the window only lets a justification sit a line or
    /// two higher than strictly adjacent.
    fn stmt_start(&self, idx: usize) -> usize {
        let mut i = idx;
        while i > 0 {
            let prev = self.masked_lines[i - 1].trim_end();
            let prev = prev.trim_start();
            if prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}')
            {
                break;
            }
            i -= 1;
        }
        i
    }

    /// True if `self.rel` lives under any of `dirs` (path-prefix match on
    /// whole components).
    pub fn under_any(&self, dirs: &[String]) -> bool {
        dirs.iter().any(|d| {
            let d = d.trim_end_matches('/');
            self.rel == d || self.rel.starts_with(&format!("{d}/"))
        })
    }
}

/// Text after `marker` on `lines[idx]`, or on the contiguous run of
/// comment / attribute / doc lines directly above `idx`. `lines` must be
/// the comment-visible view so string contents cannot masquerade as
/// comment lines (a raw string whose interior lines start with `//` is
/// blank in that view and therefore terminates the run).
pub fn comment_run_text(lines: &[String], idx: usize, marker: &str) -> Option<String> {
    let after = |l: &str| {
        l.find(marker)
            .map(|pos| l[pos + marker.len()..].trim().to_string())
    };
    if let Some(text) = lines.get(idx).and_then(|l| after(l)) {
        return Some(text);
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.starts_with('*') {
            if let Some(text) = after(t) {
                return Some(text);
            }
        } else {
            break;
        }
    }
    None
}

/// `(byte_start, byte_end)` of every line of `text`, end exclusive of
/// the line's `\n`. Mirrors `str::lines` (a trailing newline does not
/// open an empty final line), so the result is parallel to the other
/// per-line views.
fn line_spans(text: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for line in text.lines() {
        // `lines()` yields subslices of `text`, so pointer arithmetic
        // recovers each line's offset even after `\r\n` trimming.
        let off = line.as_ptr() as usize - text.as_ptr() as usize;
        debug_assert!(off >= start);
        out.push((off, off + line.len()));
        start = off + line.len();
    }
    out
}

/// Byte offsets of `word` in `line` at identifier boundaries.
pub fn keyword_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_ident_byte(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if ok_before && ok_after {
            out.push(start);
        }
        from = end;
    }
    out
}

/// Whether `b` can be part of a Rust identifier (ASCII view).
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Module-level lint tags: every `//! lint: a, b` line contributes its
/// comma-separated tags. Scans the comment-visible view, so the tag
/// syntax quoted inside a (raw) string literal declares nothing.
fn lint_tags(lines: &[String]) -> Vec<String> {
    let mut tags = Vec::new();
    for line in lines {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("//! lint:") {
            for tag in rest.split(',') {
                let tag = tag.trim();
                if !tag.is_empty() {
                    tags.push(tag.to_string());
                }
            }
        }
    }
    tags
}

/// Marks the lines covered by `#[cfg(test)] mod <name> { ... }` regions.
///
/// Works on masked lines: the attribute and the braces are code, so they
/// survive masking, while a `#[cfg(test)]` quoted in a comment does not.
fn test_regions(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    let mut i = 0;
    while i < masked_lines.len() {
        let t = masked_lines[i].trim();
        if t == "#[cfg(test)]" {
            // Scan past further attributes / blank lines to the `mod` item.
            let mut j = i + 1;
            while j < masked_lines.len() {
                let tj = masked_lines[j].trim();
                if tj.is_empty() || tj.starts_with("#[") {
                    j += 1;
                    continue;
                }
                break;
            }
            let is_mod = masked_lines
                .get(j)
                .map(|l| {
                    let l = l.trim();
                    l.starts_with("mod ") || l.starts_with("pub mod ") || l.starts_with("pub(")
                })
                .unwrap_or(false);
            if is_mod {
                if let Some((open_line, open_col)) = find_char_from(masked_lines, j, 0, '{') {
                    let end = match match_brace(masked_lines, open_line, open_col) {
                        Some(end_line) => end_line,
                        None => masked_lines.len() - 1, // unbalanced: to EOF
                    };
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    in_test
}

/// Finds the first occurrence of `c` at or after (`line`, `col`).
pub fn find_char_from(
    masked_lines: &[String],
    line: usize,
    col: usize,
    c: char,
) -> Option<(usize, usize)> {
    for (li, l) in masked_lines.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        if let Some(pos) = l.get(start..).and_then(|s| s.find(c)) {
            return Some((li, start + pos));
        }
    }
    None
}

/// Given the position of an opening `{`, returns the line of the matching
/// closing `}` (masked text, so braces in strings/comments don't count).
pub fn match_brace(masked_lines: &[String], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (li, l) in masked_lines.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        for b in l.as_bytes().iter().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// The two line-aligned views of one source text computed by
/// [`mask_views`].
pub struct MaskedViews {
    /// Comments and string/char literal contents replaced with spaces —
    /// keyword scanning only sees real code.
    pub masked: String,
    /// Only string/char literal contents replaced with spaces — comment
    /// text (and code) survives, for marker/tag lookups that must not be
    /// satisfiable from inside a literal.
    pub comments: String,
}

/// Replaces the contents of comments and string/char literals with spaces
/// so keyword scanning only sees real code. Newlines are preserved so line
/// numbers stay aligned with the original.
pub fn mask_non_code(text: &str) -> String {
    mask_views(text).masked
}

/// Computes both masked views ([`MaskedViews`]) in one pass over `text`.
/// Newlines are always preserved — including a `\` escape directly before
/// a newline inside a string literal, which must not collapse two source
/// lines into one or every later line number would shift.
pub fn mask_views(text: &str) -> MaskedViews {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut masked = String::with_capacity(text.len());
    let mut comments = String::with_capacity(text.len());
    // Emits one source char into both views: `keep_code` controls the
    // masked view, `keep_comment` the comment-visible view; newlines are
    // always kept verbatim in both.
    let mut emit = |c: char, keep_code: bool, keep_comment: bool| {
        if c == '\n' {
            masked.push('\n');
            comments.push('\n');
        } else {
            masked.push(if keep_code { c } else { ' ' });
            comments.push(if keep_comment { c } else { ' ' });
        }
    };
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    emit(c, false, true);
                    emit('/', false, true);
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    emit(c, false, true);
                    emit('*', false, true);
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    emit(c, false, false);
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Raw string r"..." / r#"..."# (also after a b prefix,
                    // which the Code arm passes through harmlessly).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            emit(' ', false, false);
                        }
                        i = j + 1;
                    } else {
                        emit(c, true, true);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char/byte literal vs lifetime: a literal closes with a
                    // quote one or two (escaped) chars ahead.
                    let is_char_lit =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char_lit {
                        st = St::Char;
                        emit(c, false, false);
                        i += 1;
                    } else {
                        emit(c, true, true);
                        i += 1;
                    }
                }
                _ => {
                    emit(c, true, true);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                }
                emit(c, false, true);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    emit(c, false, true);
                    emit('/', false, true);
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    emit(c, false, true);
                    emit('*', false, true);
                    i += 2;
                } else {
                    emit(c, false, true);
                    i += 1;
                }
            }
            St::Str | St::Char => {
                let close = if st == St::Str { '"' } else { '\'' };
                if c == '\\' {
                    // The escaped char is consumed too — but an escaped
                    // newline (string line-continuation) must still emit
                    // its newline or the views desynchronize from the
                    // original line numbering.
                    emit(c, false, false);
                    if let Some(n) = next {
                        emit(n, false, false);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == close {
                    st = St::Code;
                    emit(c, false, false);
                    i += 1;
                } else {
                    emit(c, false, false);
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            emit(' ', false, false);
                        }
                        i = j;
                        continue;
                    }
                }
                emit(c, false, false);
                i += 1;
            }
        }
    }
    MaskedViews { masked, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_and_literals() {
        let src = "let x = \"unsafe\"; // unsafe here\nlet y = 'u';\n/* unsafe */ let z = 1;\n";
        let masked = mask_non_code(src);
        assert!(!masked.contains("unsafe"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn keyword_positions_respect_identifier_boundaries() {
        assert_eq!(keyword_positions("unsafe {", "unsafe"), vec![0]);
        assert!(keyword_positions("unsafe_op_in_unsafe_fn", "unsafe").is_empty());
        assert_eq!(keyword_positions("x unsafe fn", "unsafe"), vec![2]);
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_in_comment_or_string_is_ignored() {
        let src = "// #[cfg(test)]\nlet s = \"#[cfg(test)]\";\nfn f() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.in_test.iter().all(|b| !b));
    }

    #[test]
    fn tags_parse_from_inner_doc_lines() {
        let src = "//! Module docs.\n//! lint: hot_path, other_tag\nfn f() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.has_tag("hot_path"));
        assert!(f.has_tag("other_tag"));
        assert!(!f.has_tag("cold_path"));
    }

    #[test]
    fn marker_near_sees_line_and_comment_run() {
        let src =
            "// ORDERING: pairs with X\n#[inline]\nfoo.store(1, Ordering::Release);\nbar();\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.marker_near(2, "ORDERING:"));
        assert!(!f.marker_near(3, "ORDERING:"));
    }

    #[test]
    fn marker_above_a_multiline_statement_covers_its_last_line() {
        let src = "a();\n// ORDERING: pairs with Y\nself.inner\n    .flag\n    .store(true, Ordering::Release);\nb();\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.marker_near(4, "ORDERING:"));
        assert!(!f.marker_near(5, "ORDERING:"));
    }

    #[test]
    fn under_any_matches_whole_components() {
        let f = SourceFile::parse("crates/skiplist/src/swmr.rs", "");
        assert!(f.under_any(&["crates/skiplist/src".into()]));
        assert!(!f.under_any(&["crates/skip".into()]));
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers_aligned() {
        // A `\` directly before the newline is a string line-continuation;
        // the old escape handler consumed the newline and every later line
        // number shifted by one.
        let src = "let s = \"a \\\nb\";\nfoo.store(1, Ordering::Release); // ORDERING: pairs\n";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.masked_lines.len(), f.lines.len());
        assert_eq!(f.comment_lines.len(), f.lines.len());
        assert!(f.masked_lines[2].contains("store"));
        assert!(f.marker_near(2, "ORDERING:"));
    }

    #[test]
    fn marker_inside_a_string_literal_does_not_justify() {
        // "PANIC-OK:" as an expect() message is prose, not an annotation.
        let src = "let v = x.expect(\"PANIC-OK: not a marker\");\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.marker_near(0, "PANIC-OK:"));
        // The same text in a real trailing comment does justify.
        let src = "let v = x.expect(\"boom\"); // PANIC-OK: startup only\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.marker_near(0, "PANIC-OK:"));
    }

    #[test]
    fn raw_string_interior_lines_are_not_comments_or_tags() {
        // A multi-line raw string whose interior lines look like comments
        // must neither declare module tags nor extend a comment run.
        let src = "let t = r#\"\n//! lint: hot_path\n// SAFETY: fake\n\"#;\nunsafe { op() };\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.has_tag("hot_path"));
        assert!(!f.marker_near(4, "SAFETY:"));
        // Line-number alignment holds across the raw string.
        assert_eq!(f.masked_lines.len(), f.lines.len());
        assert!(f.masked_lines[4].contains("unsafe"));
    }

    #[test]
    fn line_spans_cover_the_original_bytes() {
        let src = "ab\ncdef\n\nxy";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.line_spans, vec![(0, 2), (3, 7), (8, 8), (9, 11)]);
        assert_eq!(f.line_span(2), Some((3, 7)));
        assert_eq!(&src[3..7], "cdef");
        assert_eq!(f.line_span(0), None);
        assert_eq!(f.line_span(5), None);
    }

    #[test]
    fn marker_text_returns_the_annotation_payload() {
        let src = "// LOCK: sink_collect — leaf lock\nlet g = self.mu.lock();\n";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(
            f.marker_text(1, "LOCK:"),
            Some("sink_collect — leaf lock".to_string())
        );
        assert_eq!(f.marker_text(1, "CHANNEL:"), None);
    }
}
