//! Shared comment/string-aware Rust lexing for the xtask analysis passes.
//!
//! Both the unsafe audit and the concurrency-protocol lint need the same
//! view of a source file: the *code* with comments and string/char literal
//! contents blanked out (so keyword scans never match prose or literals),
//! next to the *original* lines (so justification markers like `SAFETY:`
//! or `ORDERING:` can be found in the comments). [`SourceFile`] computes
//! that view once per file; the passes share it instead of each carrying
//! its own string/comment state machine.

/// One parsed source file: original text, masked text, and the derived
/// line-level structure the rules consume.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes (used in diagnostics and
    /// matched against `lint.toml` scopes/allowlist entries).
    pub rel: String,
    /// Original lines, for comment-marker lookups.
    pub lines: Vec<String>,
    /// Masked lines: same shape as `lines`, but comment bodies and
    /// string/char literal contents are spaces. Keyword scans use these.
    pub masked_lines: Vec<String>,
    /// Per line: true if the line sits inside a `#[cfg(test)] mod { .. }`
    /// region. Protocol rules skip test code — tests deliberately use raw
    /// std primitives, panics, and blocking calls.
    pub in_test: Vec<bool>,
    /// Module-level lint tags declared as `//! lint: tag_a, tag_b`.
    pub tags: Vec<String>,
}

impl SourceFile {
    /// Lexes `text` into a [`SourceFile`]. `rel` should be the
    /// workspace-relative path with forward slashes.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let masked = mask_non_code(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let in_test = test_regions(&masked_lines);
        let tags = lint_tags(&lines);
        SourceFile {
            rel: rel.to_string(),
            lines,
            masked_lines,
            in_test,
            tags,
        }
    }

    /// Whether the module declared `//! lint: <tag>`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// True if line `idx` (0-based) carries `marker` on the statement it
    /// belongs to — the line itself, an earlier line of the same
    /// multi-line statement, or the contiguous run of comment/attribute
    /// lines directly above the statement's first line.
    pub fn marker_near(&self, idx: usize, marker: &str) -> bool {
        let start = self.stmt_start(idx);
        if self.lines[start..=idx].iter().any(|l| l.contains(marker)) {
            return true;
        }
        comment_run_contains(&self.lines, start, marker)
    }

    /// First line of the statement containing line `idx`: walks upward
    /// until the previous masked line ends a statement (`;`, `{`, `}`),
    /// is blank, or is pure comment. A heuristic, but a conservative one:
    /// over-extending the window only lets a justification sit a line or
    /// two higher than strictly adjacent.
    fn stmt_start(&self, idx: usize) -> usize {
        let mut i = idx;
        while i > 0 {
            let prev = self.masked_lines[i - 1].trim_end();
            let prev = prev.trim_start();
            if prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}')
            {
                break;
            }
            i -= 1;
        }
        i
    }

    /// True if `self.rel` lives under any of `dirs` (path-prefix match on
    /// whole components).
    pub fn under_any(&self, dirs: &[String]) -> bool {
        dirs.iter().any(|d| {
            let d = d.trim_end_matches('/');
            self.rel == d || self.rel.starts_with(&format!("{d}/"))
        })
    }
}

/// True if `lines[idx]` contains `marker`, or if the contiguous run of
/// comment / attribute / doc lines directly above `idx` does.
pub fn comment_run_contains(lines: &[String], idx: usize, marker: &str) -> bool {
    if lines.get(idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.starts_with('*') {
            if t.contains(marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Byte offsets of `word` in `line` at identifier boundaries.
pub fn keyword_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_ident_byte(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if ok_before && ok_after {
            out.push(start);
        }
        from = end;
    }
    out
}

/// Whether `b` can be part of a Rust identifier (ASCII view).
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Module-level lint tags: every `//! lint: a, b` line contributes its
/// comma-separated tags.
fn lint_tags(lines: &[String]) -> Vec<String> {
    let mut tags = Vec::new();
    for line in lines {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("//! lint:") {
            for tag in rest.split(',') {
                let tag = tag.trim();
                if !tag.is_empty() {
                    tags.push(tag.to_string());
                }
            }
        }
    }
    tags
}

/// Marks the lines covered by `#[cfg(test)] mod <name> { ... }` regions.
///
/// Works on masked lines: the attribute and the braces are code, so they
/// survive masking, while a `#[cfg(test)]` quoted in a comment does not.
fn test_regions(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    let mut i = 0;
    while i < masked_lines.len() {
        let t = masked_lines[i].trim();
        if t == "#[cfg(test)]" {
            // Scan past further attributes / blank lines to the `mod` item.
            let mut j = i + 1;
            while j < masked_lines.len() {
                let tj = masked_lines[j].trim();
                if tj.is_empty() || tj.starts_with("#[") {
                    j += 1;
                    continue;
                }
                break;
            }
            let is_mod = masked_lines
                .get(j)
                .map(|l| {
                    let l = l.trim();
                    l.starts_with("mod ") || l.starts_with("pub mod ") || l.starts_with("pub(")
                })
                .unwrap_or(false);
            if is_mod {
                if let Some((open_line, open_col)) = find_char_from(masked_lines, j, 0, '{') {
                    let end = match match_brace(masked_lines, open_line, open_col) {
                        Some(end_line) => end_line,
                        None => masked_lines.len() - 1, // unbalanced: to EOF
                    };
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    in_test
}

/// Finds the first occurrence of `c` at or after (`line`, `col`).
fn find_char_from(
    masked_lines: &[String],
    line: usize,
    col: usize,
    c: char,
) -> Option<(usize, usize)> {
    for (li, l) in masked_lines.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        if let Some(pos) = l.get(start..).and_then(|s| s.find(c)) {
            return Some((li, start + pos));
        }
    }
    None
}

/// Given the position of an opening `{`, returns the line of the matching
/// closing `}` (masked text, so braces in strings/comments don't count).
pub fn match_brace(masked_lines: &[String], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (li, l) in masked_lines.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        for b in l.as_bytes().iter().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Replaces the contents of comments and string/char literals with spaces
/// so keyword scanning only sees real code. Newlines are preserved so line
/// numbers stay aligned with the original.
pub fn mask_non_code(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Raw string r"..." / r#"..."# (also after a b prefix,
                    // which the Code arm passes through harmlessly).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char/byte literal vs lifetime: a literal closes with a
                    // quote one or two (escaped) chars ahead.
                    let is_char_lit =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char_lit {
                        st = St::Char;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_and_literals() {
        let src = "let x = \"unsafe\"; // unsafe here\nlet y = 'u';\n/* unsafe */ let z = 1;\n";
        let masked = mask_non_code(src);
        assert!(!masked.contains("unsafe"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn keyword_positions_respect_identifier_boundaries() {
        assert_eq!(keyword_positions("unsafe {", "unsafe"), vec![0]);
        assert!(keyword_positions("unsafe_op_in_unsafe_fn", "unsafe").is_empty());
        assert_eq!(keyword_positions("x unsafe fn", "unsafe"), vec![2]);
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_in_comment_or_string_is_ignored() {
        let src = "// #[cfg(test)]\nlet s = \"#[cfg(test)]\";\nfn f() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.in_test.iter().all(|b| !b));
    }

    #[test]
    fn tags_parse_from_inner_doc_lines() {
        let src = "//! Module docs.\n//! lint: hot_path, other_tag\nfn f() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.has_tag("hot_path"));
        assert!(f.has_tag("other_tag"));
        assert!(!f.has_tag("cold_path"));
    }

    #[test]
    fn marker_near_sees_line_and_comment_run() {
        let src =
            "// ORDERING: pairs with X\n#[inline]\nfoo.store(1, Ordering::Release);\nbar();\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.marker_near(2, "ORDERING:"));
        assert!(!f.marker_near(3, "ORDERING:"));
    }

    #[test]
    fn marker_above_a_multiline_statement_covers_its_last_line() {
        let src = "a();\n// ORDERING: pairs with Y\nself.inner\n    .flag\n    .store(true, Ordering::Release);\nb();\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.marker_near(4, "ORDERING:"));
        assert!(!f.marker_near(5, "ORDERING:"));
    }

    #[test]
    fn under_any_matches_whole_components() {
        let f = SourceFile::parse("crates/skiplist/src/swmr.rs", "");
        assert!(f.under_any(&["crates/skiplist/src".into()]));
        assert!(!f.under_any(&["crates/skip".into()]));
    }
}
