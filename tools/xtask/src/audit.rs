//! The `unsafe` justification audit (`cargo xtask unsafe-audit`).
//!
//! Walks every `.rs` file in the workspace and fails if any `unsafe`
//! block, `unsafe impl`, or `unsafe fn` lacks an adjacent justification:
//! blocks and impls need a `// SAFETY:` comment on the same line or in the
//! contiguous comment run directly above; `unsafe fn` declarations need a
//! `# Safety` doc section (or a `SAFETY:` comment).
//!
//! The pass shares the comment/string-aware scanner in [`crate::lexer`]
//! with the concurrency-protocol lint, so `unsafe` occurrences inside
//! comments, literals, and identifiers such as `unsafe_op_in_unsafe_fn`
//! are never miscounted.

use std::fmt::Write as _;
use std::process::ExitCode;

use crate::lexer::{keyword_positions, SourceFile};
use crate::{collect_rs_files, workspace_root};

/// Runs the audit over the whole workspace (including `vendor/`; unsafe
/// code is unsafe code wherever it lives).
pub fn unsafe_audit() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["src", "crates", "vendor", "tools", "benches", "tests"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut audited_sites = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("unsafe-audit: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let parsed = SourceFile::parse(&rel, &text);
        audited_sites += audit_file(&parsed, &mut violations);
    }

    if violations.is_empty() {
        println!(
            "unsafe-audit: OK — {audited_sites} unsafe site(s) across {} file(s), all justified",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        let mut report = String::new();
        for v in &violations {
            let _ = writeln!(report, "{v}");
        }
        eprint!("{report}");
        eprintln!(
            "unsafe-audit: FAILED — {} unjustified unsafe site(s) (of {audited_sites} audited)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// What follows the `unsafe` keyword at a site.
#[derive(Clone, Copy, PartialEq)]
enum SiteKind {
    /// `unsafe {` — an unsafe block (or unsafe expression body).
    Block,
    /// `unsafe fn` / `unsafe extern "C" fn` — a declaration whose contract
    /// belongs in a `# Safety` doc section.
    Fn,
    /// `unsafe impl` / `unsafe trait`.
    ImplOrTrait,
}

/// Audits one file; pushes violation strings and returns how many unsafe
/// sites were inspected.
pub fn audit_file(file: &SourceFile, violations: &mut Vec<String>) -> usize {
    let mut sites = 0usize;
    for (idx, mline) in file.masked_lines.iter().enumerate() {
        for col in keyword_positions(mline, "unsafe") {
            sites += 1;
            let kind = classify(&file.masked_lines, idx, col + "unsafe".len());
            let lineno = idx + 1;
            match kind {
                SiteKind::Block | SiteKind::ImplOrTrait => {
                    if !file.marker_near(idx, "SAFETY:") {
                        let what = if kind == SiteKind::Block {
                            "unsafe block"
                        } else {
                            "unsafe impl/trait"
                        };
                        violations.push(format!(
                            "{}:{lineno}: {what} without an adjacent `// SAFETY:` comment",
                            file.rel
                        ));
                    }
                }
                SiteKind::Fn => {
                    if !has_safety_doc(&file.lines, idx) {
                        violations.push(format!(
                            "{}:{lineno}: unsafe fn without a `# Safety` doc section",
                            file.rel
                        ));
                    }
                }
            }
        }
    }
    sites
}

/// Looks at the first token after the `unsafe` keyword (possibly on a
/// later line) to decide what kind of site this is.
fn classify(masked_lines: &[String], line: usize, col: usize) -> SiteKind {
    let mut rest = masked_lines[line][col..].to_string();
    // Pull in following lines until we see a meaningful token.
    let mut next = line + 1;
    while rest.trim().is_empty() && next < masked_lines.len() {
        rest = masked_lines[next].to_string();
        next += 1;
    }
    let trimmed = rest.trim_start();
    if trimmed.starts_with("fn") || trimmed.starts_with("extern") || trimmed.starts_with("async") {
        SiteKind::Fn
    } else if trimmed.starts_with("impl") || trimmed.starts_with("trait") {
        SiteKind::ImplOrTrait
    } else {
        SiteKind::Block
    }
}

/// True if the contiguous doc-comment/attribute run above an `unsafe fn`
/// contains a `# Safety` section (a plain `SAFETY:` comment also counts).
fn has_safety_doc(lines: &[String], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.starts_with('*') {
            if t.contains("# Safety") || t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_src(src: &str) -> (usize, Vec<String>) {
        let file = SourceFile::parse("t.rs", src);
        let mut v = Vec::new();
        let n = audit_file(&file, &mut v);
        (n, v)
    }

    #[test]
    fn audit_flags_missing_and_accepts_present() {
        let bad = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let (n, v) = audit_src(bad);
        assert_eq!(n, 1);
        assert_eq!(v.len(), 1);

        let good = "fn f() {\n    // SAFETY: provably unreachable.\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let (_, v) = audit_src(good);
        assert!(v.is_empty());

        let good_fn = "/// Does things.\n///\n/// # Safety\n/// Caller must uphold X.\npub unsafe fn g() {}\n";
        let (_, v) = audit_src(good_fn);
        assert!(v.is_empty());
    }

    #[test]
    fn impls_need_safety_comments_too() {
        let bad = "unsafe impl Send for Foo {}\n";
        let (_, v) = audit_src(bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("impl"));

        let good = "// SAFETY: Foo owns no thread-affine state.\nunsafe impl Send for Foo {}\n";
        let (_, v) = audit_src(good);
        assert!(v.is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_literals_is_not_a_site() {
        let src = "// an unsafe remark\nlet s = \"unsafe\";\nlet n = unsafe_op_in_unsafe_fn;\n";
        let (n, v) = audit_src(src);
        assert_eq!(n, 0);
        assert!(v.is_empty());
    }
}
