//! Shared framing for runtime-witness observation logs.
//!
//! Both runtime witnesses (`oij_common::lockdep`, `oij_common::protowit`)
//! append whitespace-separated records — one observation per line, first
//! field the record kind — to an environment-named file, and both
//! `cargo xtask lockdep-check` and `cargo xtask proto-check` replay those
//! logs against the declarations in `lint.toml`. This module owns the
//! shared half so a third witness does not copy it again: record framing
//! against a `(kind, arity)` schema, keep-first dedup (every test binary
//! in a workspace run appends its own first observations), and the
//! observed-vs-declared staleness diff. The per-witness semantics —
//! which observations are errors — stay in `lockdep.rs` / `proto.rs`.

/// One parsed log record: the kind tag plus its fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    pub kind: String,
    pub fields: Vec<String>,
}

impl Record {
    /// Field `i`, which the schema guarantees exists for a parsed record.
    pub fn field(&self, i: usize) -> &str {
        &self.fields[i]
    }
}

/// Parses a witness log against `schema` — `(kind, field-count)` pairs.
/// Blank lines are skipped; an unknown kind or a wrong field count is an
/// error naming the line (a corrupt log must not silently verify).
pub fn parse_records(text: &str, schema: &[(&str, usize)]) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut fields: Vec<&str> = line.split_whitespace().collect();
        if fields.is_empty() {
            continue;
        }
        let kind = fields.remove(0);
        let Some((_, arity)) = schema.iter().find(|(k, _)| *k == kind) else {
            return Err(format!(
                "line {}: unrecognised witness record `{line}` (expected one of: {})",
                i + 1,
                schema
                    .iter()
                    .map(|(k, _)| *k)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        };
        if fields.len() != *arity {
            return Err(format!(
                "line {}: `{kind}` record with {} field(s), expected {arity}: `{line}`",
                i + 1,
                fields.len()
            ));
        }
        out.push(Record {
            kind: kind.to_string(),
            fields: fields.into_iter().map(str::to_string).collect(),
        });
    }
    Ok(out)
}

/// Keeps the first record per identity, where `key` projects the fields
/// that identify a record (typically the kind plus the named entities,
/// excluding the source sites — the first-observed site is the one
/// reported).
pub fn dedup_keep_first(records: Vec<Record>, key: impl Fn(&Record) -> Vec<String>) -> Vec<Record> {
    let mut seen: Vec<Vec<String>> = Vec::new();
    let mut out = Vec::new();
    for r in records {
        let k = key(&r);
        if seen.contains(&k) {
            continue;
        }
        seen.push(k);
        out.push(r);
    }
    out
}

/// Declared names that no observation covers — staleness *warnings*, not
/// errors: a unit-test run does not exercise every engine, so absence is
/// not evidence the declaration is wrong.
pub fn unobserved_declared(declared: &[String], observed: impl Fn(&str) -> bool) -> Vec<String> {
    declared.iter().filter(|d| !observed(d)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: [(&str, usize); 2] = [("class", 2), ("edge", 4)];

    #[test]
    fn records_parse_against_the_schema() {
        let recs = parse_records("class a s:1:1\n\nedge a b s:1:1 s:2:2\n", &SCHEMA).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, "class");
        assert_eq!(recs[0].field(0), "a");
        assert_eq!(recs[1].field(3), "s:2:2");
    }

    #[test]
    fn unknown_kinds_and_wrong_arity_are_errors() {
        let e = parse_records("acquired a b\n", &SCHEMA).unwrap_err();
        assert!(e.contains("line 1") && e.contains("unrecognised"), "{e}");
        let e = parse_records("class a\nclass b s:1:1 extra\n", &SCHEMA).unwrap_err();
        assert!(e.contains("line 1") && e.contains("expected 2"), "{e}");
    }

    #[test]
    fn dedup_keeps_the_first_observation_site() {
        let recs = parse_records(
            "class a first:1:1\nclass a second:2:2\nclass b s:3:3\n",
            &SCHEMA,
        )
        .unwrap();
        let deduped = dedup_keep_first(recs, |r| vec![r.kind.clone(), r.field(0).to_string()]);
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped[0].field(1), "first:1:1");
    }

    #[test]
    fn unobserved_declared_lists_the_gap() {
        let declared: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let seen = ["a", "c"];
        let gap = unobserved_declared(&declared, |d| seen.contains(&d));
        assert_eq!(gap, vec!["b".to_string()]);
    }
}
