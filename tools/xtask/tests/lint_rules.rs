//! End-to-end tests for the lint engine: each rule gets one positive and
//! one negative fixture under `tests/fixtures/`, parsed exactly as the
//! CLI would and pushed through [`xtask::lint::check_files`]. Assertions
//! compare the *full* `(rule, line)` set, so a rule firing on the wrong
//! line — or a different rule firing at all — fails the test.

use std::fs;
use std::path::Path;

use xtask::lexer::SourceFile;
use xtask::lint::check_files;
use xtask::lint::config::Config;

/// Parses `tests/fixtures/<name>` under the synthetic workspace-relative
/// path `rel`, which decides how `lint.toml` scopes apply to it.
fn fixture(rel: &str, name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    SourceFile::parse(rel, &text)
}

/// The fixture workspace: a scoped source dir, a facade file, a
/// loom-audited dir, and a model file — mirroring the real lint.toml.
fn demo_config(extra: &str) -> Config {
    let base = r#"
[scope]
src = ["crates/demo/src"]

[facade]
files = ["crates/demo/src/sync.rs"]

[loom]
crates = ["crates/demo/loomed"]
models = ["crates/demo/tests/loom.rs"]
"#;
    Config::parse(&format!("{base}{extra}")).expect("fixture config parses")
}

/// `(rule, line)` for every surviving diagnostic, in engine order.
fn findings(files: &[SourceFile], cfg: &Config) -> Vec<(&'static str, usize)> {
    check_files(files, cfg)
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn r1_flags_unjustified_ordering_sites_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r1_bad.rs", "r1_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R1", 8), ("R1", 10), ("R1", 12), ("R1", 17)]
    );
}

#[test]
fn r1_accepts_justified_ordering_sites() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r1_good.rs", "r1_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r2_flags_facade_bypasses_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r2_bad.rs", "r2_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R2", 4), ("R2", 5), ("R2", 6), ("R2", 9)]
    );
}

#[test]
fn r2_subjects_name_the_bypassed_path() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r2_bad.rs", "r2_bad.rs");
    let subjects: Vec<String> = check_files(&[f], &cfg)
        .diagnostics
        .into_iter()
        .map(|d| d.subject)
        .collect();
    assert_eq!(
        subjects,
        vec![
            "std::sync::atomic",
            "std::sync::Mutex",
            "std::sync::RwLock",
            "loom::sync"
        ]
    );
}

#[test]
fn r2_accepts_facade_imports_and_exempts_the_facade_itself() {
    let cfg = demo_config("");
    let good = fixture("crates/demo/src/r2_good.rs", "r2_good.rs");
    assert_eq!(findings(&[good], &cfg), vec![]);
    // The same bypassing file parsed *as* the facade raises nothing: the
    // facade is the one place allowed to name std::sync / loom::sync.
    let as_facade = fixture("crates/demo/src/sync.rs", "r2_bad.rs");
    assert_eq!(findings(&[as_facade], &cfg), vec![]);
}

#[test]
fn r3_flags_panicking_ops_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r3_bad.rs", "r3_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R3", 7), ("R3", 9), ("R3", 11), ("R3", 13), ("R3", 15)]
    );
}

#[test]
fn r3_accepts_justified_panics_and_non_panicking_cousins() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r3_good.rs", "r3_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r3_is_scoped_to_configured_source_dirs() {
    let cfg = demo_config("");
    // Same hot_path-tagged content outside [scope] src: not checked.
    let f = fixture("crates/other/src/r3_bad.rs", "r3_bad.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r4_flags_blocking_ops_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r4_bad.rs", "r4_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R4", 7), ("R4", 8), ("R4", 9), ("R4", 10), ("R4", 11)]
    );
}

#[test]
fn r4_accepts_try_variants_and_justified_blocking() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r4_good.rs", "r4_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r5_flags_the_model_uncovered_type_only() {
    let cfg = demo_config("");
    let files = [
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    let got: Vec<(&str, usize, &str)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.subject.as_str()))
        .collect();
    // `Covered` is driven by the model; `Uncovered` is named there only
    // inside a comment, which masking hides; `Plain` owns no atomic; and
    // `View` holds atomics behind a raw pointer (a borrow, not ownership).
    assert_eq!(got, vec![("R5", 10, "Uncovered")]);
}

#[test]
fn r1_flags_the_untagged_backend_publish_idiom() {
    // The index-backend publish path (RCU swap, stamp store, late-count
    // bump) is the idiom crates/index lives on; each ordering site needs
    // its own justification.
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r1_publish_bad.rs", "r1_publish_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R1", 8), ("R1", 10), ("R1", 12)]
    );
}

#[test]
fn r1_accepts_the_tagged_backend_publish_idiom() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r1_publish_good.rs", "r1_publish_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r5_exempts_private_atomic_owning_backend_state() {
    // The backends keep their atomic-owning shared structs private and
    // drive them through public handles; R5 must not demand models for
    // types that cannot escape the crate — even with no model file at
    // all in the run.
    let cfg = demo_config("");
    let f = fixture("crates/demo/loomed/r5_private.rs", "r5_private.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

/// The `[lockorder]` declarations the R6 fixtures are written against.
/// Kept separate from [`TOPOLOGY_TABLE`]: declaring topology edges in a
/// run whose files never tag them would add stale-edge findings.
const LOCKORDER_TABLE: &str = r#"
[lockorder]
classes = ["a", "b"]
order = ["a -> b"]
"#;

/// The `[topology]` declarations the R7 fixtures are written against.
const TOPOLOGY_TABLE: &str = r#"
[topology]
workers = ["driver", "joiner", "collector"]
edges = ["driver -> joiner : bounded", "joiner -> collector : unbounded"]
"#;

#[test]
fn r6_flags_untagged_undeclared_misordered_and_reentrant_sites() {
    let cfg = demo_config(LOCKORDER_TABLE);
    let f = fixture("crates/demo/src/r6_bad.rs", "r6_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R6", 7), ("R6", 13), ("R6", 21), ("R6", 29)]
    );
}

#[test]
fn r6_subjects_name_what_went_wrong() {
    let cfg = demo_config(LOCKORDER_TABLE);
    let f = fixture("crates/demo/src/r6_bad.rs", "r6_bad.rs");
    let subjects: Vec<String> = check_files(&[f], &cfg)
        .diagnostics
        .into_iter()
        .map(|d| d.subject)
        .collect();
    // Untagged site, undeclared class, violating nesting pair, re-entrant
    // class — in line order.
    assert_eq!(subjects, vec![".lock()", "mystery", "b -> a", "a"]);
}

#[test]
fn r6_accepts_ordered_nesting_and_every_guard_release_shape() {
    let cfg = demo_config(LOCKORDER_TABLE);
    let f = fixture("crates/demo/src/r6_good.rs", "r6_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r7_flags_untagged_unknown_mismatched_and_raw_send_sites() {
    let cfg = demo_config(TOPOLOGY_TABLE);
    let f = fixture("crates/demo/src/r7_bad.rs", "r7_bad.rs");
    let out = check_files(&[f], &cfg);
    let got: Vec<(&str, usize)> = out.diagnostics.iter().map(|d| (d.rule, d.line)).collect();
    // The five in-file sites, then the stale declared edge (nothing in
    // this run realises driver -> joiner) anchored at lint.toml's
    // `edges = [...]` line.
    assert_eq!(
        got,
        vec![
            ("R7", 9),
            ("R7", 14),
            ("R7", 19),
            ("R7", 24),
            ("R7", 28),
            ("R7", cfg.topo_edges_line)
        ]
    );
    let stale = out.diagnostics.last().unwrap();
    assert_eq!(stale.file, "lint.toml");
    assert_eq!(stale.subject, "driver -> joiner");
}

#[test]
fn r7_accepts_tagged_constructions_and_guarded_sends() {
    let cfg = demo_config(TOPOLOGY_TABLE);
    let f = fixture("crates/demo/src/r7_good.rs", "r7_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r7_rejects_a_declared_bounded_cycle_at_the_lint_toml_line() {
    let cfg = demo_config(
        r#"
[topology]
workers = ["d", "j"]
edges = ["d -> j : bounded", "j -> d : bounded"]
"#,
    );
    // No source files at all: the graph checks are declaration-level.
    let out = check_files(&[], &cfg);
    let cycle: Vec<&xtask::lint::Diagnostic> = out
        .diagnostics
        .iter()
        .filter(|d| d.message.contains("cycle"))
        .collect();
    assert_eq!(cycle.len(), 1);
    assert_eq!(cycle[0].rule, "R7");
    assert_eq!(cycle[0].file, "lint.toml");
    assert_eq!(cycle[0].line, cfg.topo_edges_line);
    assert_eq!(cycle[0].subject, "d -> j -> d");
    // Both declared edges are also stale (no construction sites exist).
    assert_eq!(out.diagnostics.len(), 3);
}

/// The `[protocol]` declarations the R8 fixtures are written against.
/// The topology edges it aliases are required by validation but carry no
/// `// CHANNEL:` tags in these fixtures, so R7 raises stale-edge
/// findings — the R8/R9 tests filter to their own rule.
const PROTOCOL_TABLE: &str = r#"
[topology]
workers = ["driver", "joiner", "collector"]
edges = ["driver -> joiner : bounded", "joiner -> collector : unbounded"]

[protocol]
edges = ["dj = driver -> joiner", "jc = joiner -> collector"]
transitions = [
    "dj : stream --data--> stream",
    "dj : stream --batch--> stream",
    "dj : stream --heartbeat--> stream",
    "dj : stream --finish--> closed",
    "dj : island --data--> island",
    "jc : stream --data--> stream",
    "jc : stream --finish--> closed",
]
"#;

/// The `[stamps]` declarations the R9 fixtures are written against.
const STAMPS_TABLE: &str = r#"
[stamps]
pairs = [
    "wal-dispatch : wal-append < dispatch",
    "deliver-mark : deliver < mark-emitted",
    "stamp-observe : stamp-read < tracker-observe",
]
"#;

/// `(line, subject)` of every surviving diagnostic of one rule.
fn rule_findings(files: &[SourceFile], cfg: &Config, id: &str) -> Vec<(usize, String)> {
    check_files(files, cfg)
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == id)
        .map(|d| (d.line, d.subject))
        .collect()
}

#[test]
fn r8_flags_untagged_undeclared_unreachable_mismatched_and_post_finish_sites() {
    let cfg = demo_config(PROTOCOL_TABLE);
    let f = fixture("crates/demo/src/r8_bad.rs", "r8_bad.rs");
    let s = |t: &str| t.to_string();
    assert_eq!(
        rule_findings(&[f], &cfg, "R8"),
        vec![
            (4, s("Msg::Data")),             // untagged send site
            (8, s("ghost.stream")),          // tag names no declared edge
            (13, s("dj.warp")),              // tag names no state of the automaton
            (18, s("dj.island")),            // state unreachable from the start state
            (24, s("dj.closed")),            // Heartbeat cannot enter the terminal state
            (30, s("dj.stream")),            // send after the same function's Finish tag
            (35, s("stream")),               // malformed tag (no `<edge>.<state>`)
            (cfg.proto_edges_line, s("jc")), // declared edge named by no tag here
        ]
    );
}

#[test]
fn r8_post_finish_diagnostic_names_the_closing_line() {
    let cfg = demo_config(PROTOCOL_TABLE);
    let f = fixture("crates/demo/src/r8_bad.rs", "r8_bad.rs");
    let out = check_files(&[f], &cfg);
    let post = out
        .diagnostics
        .iter()
        .find(|d| d.rule == "R8" && d.line == 30)
        .expect("post-finish finding");
    assert!(
        post.message
            .contains("after the `Finish` tag `dj.closed` (line 28)"),
        "message must cite the closing tag's line: {}",
        post.message
    );
}

#[test]
fn r8_accepts_tagged_sends_patterns_and_hand_tagged_edges() {
    let cfg = demo_config(PROTOCOL_TABLE);
    let f = fixture("crates/demo/src/r8_good.rs", "r8_good.rs");
    assert_eq!(rule_findings(&[f], &cfg, "R8"), vec![]);
}

#[test]
fn r8_stale_edge_is_anchored_in_lint_toml() {
    let cfg = demo_config(PROTOCOL_TABLE);
    let f = fixture("crates/demo/src/r8_bad.rs", "r8_bad.rs");
    let out = check_files(&[f], &cfg);
    let stale = out
        .diagnostics
        .iter()
        .find(|d| d.rule == "R8" && d.file == "lint.toml")
        .expect("stale edge finding");
    assert_eq!(stale.line, cfg.proto_edges_line);
    assert_eq!(stale.subject, "jc");
}

#[test]
fn r9_flags_untagged_unknown_misroled_missing_and_inverted_sites() {
    let cfg = demo_config(STAMPS_TABLE);
    let f = fixture("crates/demo/src/r9_bad.rs", "r9_bad.rs");
    let s = |t: &str| t.to_string();
    assert_eq!(
        rule_findings(&[f], &cfg, "R9"),
        vec![
            (5, s("record_event")),                     // untagged WAL append
            (6, s("mark_emitted")),                     // untagged exactly-once mark
            (7, s("tracker.observe")),                  // untagged tracker observation
            (11, s("ghost.pre")),                       // tag names no declared pair
            (16, s("wal-dispatch.during")),             // role is neither pre nor post
            (21, s("wal-dispatch.post")),               // post with no pre in the function
            (26, s("deliver-mark.post")),               // pre exists but only after post
            (cfg.stamp_pairs_line, s("stamp-observe")), // pair named by no tag here
        ]
    );
}

#[test]
fn r9_distinguishes_missing_from_inverted_orderings() {
    let cfg = demo_config(STAMPS_TABLE);
    let f = fixture("crates/demo/src/r9_bad.rs", "r9_bad.rs");
    let out = check_files(&[f], &cfg);
    let missing = out
        .diagnostics
        .iter()
        .find(|d| d.rule == "R9" && d.line == 21)
        .unwrap();
    assert!(missing.message.contains("first half is missing"));
    let inverted = out
        .diagnostics
        .iter()
        .find(|d| d.rule == "R9" && d.line == 26)
        .unwrap();
    assert!(inverted.message.contains("inverted"));
    assert!(
        inverted.message.contains("(line 28)"),
        "inversion must cite the late pre line: {}",
        inverted.message
    );
}

#[test]
fn r9_accepts_tagged_and_ordered_pairs() {
    let cfg = demo_config(STAMPS_TABLE);
    let f = fixture("crates/demo/src/r9_good.rs", "r9_good.rs");
    assert_eq!(rule_findings(&[f], &cfg, "R9"), vec![]);
}

#[test]
fn r9_allow_suppresses_an_untagged_sentinel_and_counts_the_use() {
    let cfg = demo_config(&format!(
        "{}{}",
        STAMPS_TABLE,
        r#"
[[allow]]
rule = "R9"
file = "crates/demo/src/r9_bad.rs"
subject = "tracker.observe"
reason = "replay-side observation of a stamp fixed in a prior run"
"#
    ));
    let f = fixture("crates/demo/src/r9_bad.rs", "r9_bad.rs");
    let out = check_files(&[f], &cfg);
    assert_eq!(out.allow_uses, vec![1]);
    assert!(out.stale_allows().is_empty());
    assert!(
        !out.diagnostics
            .iter()
            .any(|d| d.rule == "R9" && d.line == 7),
        "the allowed tracker.observe finding must be suppressed"
    );
}

#[test]
fn json_output_pins_the_schema_and_byte_spans() {
    // Schema pin: every diagnostic renders the eight keys in this order,
    // `span` carries the flagged line's byte range, and declaration-level
    // findings (anchored in lint.toml, which is not a parsed source file)
    // render `"span": null`. Treat a change here as a breaking change to
    // `cargo xtask lint --json` consumers.
    let cfg = demo_config(PROTOCOL_TABLE);
    let files = [fixture("crates/demo/src/r8_bad.rs", "r8_bad.rs")];
    let out = check_files(&files, &cfg);
    let json = xtask::lint::render_json(&out, &cfg, &files);
    assert!(
        json.contains(
            "{\"rule\": \"R8\", \"name\": \"message-protocol\", \
             \"file\": \"crates/demo/src/r8_bad.rs\", \"line\": 4, \
             \"span\": {\"byte_start\": 106, \"byte_end\": 132}, \
             \"subject\": \"Msg::Data\""
        ),
        "span of r8_bad.rs:4 drifted:\n{json}"
    );
    // The stale-edge finding is anchored at lint.toml, which has no span.
    let stale = format!(
        "\"file\": \"lint.toml\", \"line\": {}, \"span\": null, \"subject\": \"jc\"",
        cfg.proto_edges_line
    );
    assert!(
        json.contains(&stale),
        "lint.toml-anchored findings must render a null span:\n{json}"
    );
}

#[test]
fn allowlist_suppresses_matching_diagnostics_and_counts_uses() {
    let cfg = demo_config(
        r#"
[[allow]]
rule = "R5"
file = "crates/demo/loomed/r5_src.rs"
subject = "Uncovered"
reason = "diagnostics-only latch; exercised by the chaos suite"
"#,
    );
    let files = [
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    assert_eq!(out.diagnostics.len(), 0);
    assert_eq!(out.allow_uses, vec![1]);
    assert!(out.stale_allows().is_empty());
}

#[test]
fn stale_allow_entries_are_reported_by_index() {
    let cfg = demo_config(
        r#"
[[allow]]
rule = "R5"
file = "crates/demo/loomed/r5_src.rs"
subject = "Uncovered"
reason = "diagnostics-only latch; exercised by the chaos suite"

[[allow]]
rule = "R1"
file = "crates/demo/src/never_violates.rs"
reason = "left over from a deleted module"
"#,
    );
    let files = [
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    assert_eq!(out.allow_uses, vec![1, 0]);
    assert_eq!(out.stale_allows(), vec![1]);
}

#[test]
fn rules_do_not_bleed_across_fixtures_in_a_joint_run() {
    // All fixtures together, once: the union of the per-rule expectations
    // and nothing more. Guards against a rule matching another rule's
    // bait (e.g. R2 firing on R1's `core::sync::atomic` import).
    let cfg = demo_config("");
    let files = [
        fixture("crates/demo/src/r1_bad.rs", "r1_bad.rs"),
        fixture("crates/demo/src/r1_good.rs", "r1_good.rs"),
        fixture("crates/demo/src/r2_bad.rs", "r2_bad.rs"),
        fixture("crates/demo/src/r2_good.rs", "r2_good.rs"),
        fixture("crates/demo/src/r3_bad.rs", "r3_bad.rs"),
        fixture("crates/demo/src/r3_good.rs", "r3_good.rs"),
        fixture("crates/demo/src/r4_bad.rs", "r4_bad.rs"),
        fixture("crates/demo/src/r4_good.rs", "r4_good.rs"),
        fixture("crates/demo/src/r6_bad.rs", "r6_bad.rs"),
        fixture("crates/demo/src/r7_bad.rs", "r7_bad.rs"),
        fixture("crates/demo/src/r8_bad.rs", "r8_bad.rs"),
        fixture("crates/demo/src/r9_bad.rs", "r9_bad.rs"),
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    let per_rule = |id: &str| out.diagnostics.iter().filter(|d| d.rule == id).count();
    assert_eq!(per_rule("R1"), 4);
    assert_eq!(per_rule("R2"), 4);
    assert_eq!(per_rule("R3"), 5);
    assert_eq!(per_rule("R4"), 5);
    assert_eq!(per_rule("R5"), 1);
    // With no [lockorder]/[topology]/[protocol]/[stamps] declared, R6-R9
    // stay inert even over their own bait fixtures.
    assert_eq!(per_rule("R6"), 0);
    assert_eq!(per_rule("R7"), 0);
    assert_eq!(per_rule("R8"), 0);
    assert_eq!(per_rule("R9"), 0);
    assert_eq!(out.diagnostics.len(), 19);
}
