//! End-to-end tests for the lint engine: each rule gets one positive and
//! one negative fixture under `tests/fixtures/`, parsed exactly as the
//! CLI would and pushed through [`xtask::lint::check_files`]. Assertions
//! compare the *full* `(rule, line)` set, so a rule firing on the wrong
//! line — or a different rule firing at all — fails the test.

use std::fs;
use std::path::Path;

use xtask::lexer::SourceFile;
use xtask::lint::check_files;
use xtask::lint::config::Config;

/// Parses `tests/fixtures/<name>` under the synthetic workspace-relative
/// path `rel`, which decides how `lint.toml` scopes apply to it.
fn fixture(rel: &str, name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    SourceFile::parse(rel, &text)
}

/// The fixture workspace: a scoped source dir, a facade file, a
/// loom-audited dir, and a model file — mirroring the real lint.toml.
fn demo_config(extra: &str) -> Config {
    let base = r#"
[scope]
src = ["crates/demo/src"]

[facade]
files = ["crates/demo/src/sync.rs"]

[loom]
crates = ["crates/demo/loomed"]
models = ["crates/demo/tests/loom.rs"]
"#;
    Config::parse(&format!("{base}{extra}")).expect("fixture config parses")
}

/// `(rule, line)` for every surviving diagnostic, in engine order.
fn findings(files: &[SourceFile], cfg: &Config) -> Vec<(&'static str, usize)> {
    check_files(files, cfg)
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn r1_flags_unjustified_ordering_sites_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r1_bad.rs", "r1_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R1", 8), ("R1", 10), ("R1", 12), ("R1", 17)]
    );
}

#[test]
fn r1_accepts_justified_ordering_sites() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r1_good.rs", "r1_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r2_flags_facade_bypasses_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r2_bad.rs", "r2_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R2", 4), ("R2", 5), ("R2", 6), ("R2", 9)]
    );
}

#[test]
fn r2_subjects_name_the_bypassed_path() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r2_bad.rs", "r2_bad.rs");
    let subjects: Vec<String> = check_files(&[f], &cfg)
        .diagnostics
        .into_iter()
        .map(|d| d.subject)
        .collect();
    assert_eq!(
        subjects,
        vec![
            "std::sync::atomic",
            "std::sync::Mutex",
            "std::sync::RwLock",
            "loom::sync"
        ]
    );
}

#[test]
fn r2_accepts_facade_imports_and_exempts_the_facade_itself() {
    let cfg = demo_config("");
    let good = fixture("crates/demo/src/r2_good.rs", "r2_good.rs");
    assert_eq!(findings(&[good], &cfg), vec![]);
    // The same bypassing file parsed *as* the facade raises nothing: the
    // facade is the one place allowed to name std::sync / loom::sync.
    let as_facade = fixture("crates/demo/src/sync.rs", "r2_bad.rs");
    assert_eq!(findings(&[as_facade], &cfg), vec![]);
}

#[test]
fn r3_flags_panicking_ops_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r3_bad.rs", "r3_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R3", 7), ("R3", 9), ("R3", 11), ("R3", 13), ("R3", 15)]
    );
}

#[test]
fn r3_accepts_justified_panics_and_non_panicking_cousins() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r3_good.rs", "r3_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r3_is_scoped_to_configured_source_dirs() {
    let cfg = demo_config("");
    // Same hot_path-tagged content outside [scope] src: not checked.
    let f = fixture("crates/other/src/r3_bad.rs", "r3_bad.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r4_flags_blocking_ops_at_exact_lines() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r4_bad.rs", "r4_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R4", 7), ("R4", 8), ("R4", 9), ("R4", 10), ("R4", 11)]
    );
}

#[test]
fn r4_accepts_try_variants_and_justified_blocking() {
    let cfg = demo_config("");
    let f = fixture("crates/demo/src/r4_good.rs", "r4_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r5_flags_the_model_uncovered_type_only() {
    let cfg = demo_config("");
    let files = [
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    let got: Vec<(&str, usize, &str)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.subject.as_str()))
        .collect();
    // `Covered` is driven by the model; `Uncovered` is named there only
    // inside a comment, which masking hides; `Plain` owns no atomic; and
    // `View` holds atomics behind a raw pointer (a borrow, not ownership).
    assert_eq!(got, vec![("R5", 10, "Uncovered")]);
}

/// The `[lockorder]` declarations the R6 fixtures are written against.
/// Kept separate from [`TOPOLOGY_TABLE`]: declaring topology edges in a
/// run whose files never tag them would add stale-edge findings.
const LOCKORDER_TABLE: &str = r#"
[lockorder]
classes = ["a", "b"]
order = ["a -> b"]
"#;

/// The `[topology]` declarations the R7 fixtures are written against.
const TOPOLOGY_TABLE: &str = r#"
[topology]
workers = ["driver", "joiner", "collector"]
edges = ["driver -> joiner : bounded", "joiner -> collector : unbounded"]
"#;

#[test]
fn r6_flags_untagged_undeclared_misordered_and_reentrant_sites() {
    let cfg = demo_config(LOCKORDER_TABLE);
    let f = fixture("crates/demo/src/r6_bad.rs", "r6_bad.rs");
    assert_eq!(
        findings(&[f], &cfg),
        vec![("R6", 7), ("R6", 13), ("R6", 21), ("R6", 29)]
    );
}

#[test]
fn r6_subjects_name_what_went_wrong() {
    let cfg = demo_config(LOCKORDER_TABLE);
    let f = fixture("crates/demo/src/r6_bad.rs", "r6_bad.rs");
    let subjects: Vec<String> = check_files(&[f], &cfg)
        .diagnostics
        .into_iter()
        .map(|d| d.subject)
        .collect();
    // Untagged site, undeclared class, violating nesting pair, re-entrant
    // class — in line order.
    assert_eq!(subjects, vec![".lock()", "mystery", "b -> a", "a"]);
}

#[test]
fn r6_accepts_ordered_nesting_and_every_guard_release_shape() {
    let cfg = demo_config(LOCKORDER_TABLE);
    let f = fixture("crates/demo/src/r6_good.rs", "r6_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r7_flags_untagged_unknown_mismatched_and_raw_send_sites() {
    let cfg = demo_config(TOPOLOGY_TABLE);
    let f = fixture("crates/demo/src/r7_bad.rs", "r7_bad.rs");
    let out = check_files(&[f], &cfg);
    let got: Vec<(&str, usize)> = out.diagnostics.iter().map(|d| (d.rule, d.line)).collect();
    // The five in-file sites, then the stale declared edge (nothing in
    // this run realises driver -> joiner) anchored at lint.toml's
    // `edges = [...]` line.
    assert_eq!(
        got,
        vec![
            ("R7", 9),
            ("R7", 14),
            ("R7", 19),
            ("R7", 24),
            ("R7", 28),
            ("R7", cfg.topo_edges_line)
        ]
    );
    let stale = out.diagnostics.last().unwrap();
    assert_eq!(stale.file, "lint.toml");
    assert_eq!(stale.subject, "driver -> joiner");
}

#[test]
fn r7_accepts_tagged_constructions_and_guarded_sends() {
    let cfg = demo_config(TOPOLOGY_TABLE);
    let f = fixture("crates/demo/src/r7_good.rs", "r7_good.rs");
    assert_eq!(findings(&[f], &cfg), vec![]);
}

#[test]
fn r7_rejects_a_declared_bounded_cycle_at_the_lint_toml_line() {
    let cfg = demo_config(
        r#"
[topology]
workers = ["d", "j"]
edges = ["d -> j : bounded", "j -> d : bounded"]
"#,
    );
    // No source files at all: the graph checks are declaration-level.
    let out = check_files(&[], &cfg);
    let cycle: Vec<&xtask::lint::Diagnostic> = out
        .diagnostics
        .iter()
        .filter(|d| d.message.contains("cycle"))
        .collect();
    assert_eq!(cycle.len(), 1);
    assert_eq!(cycle[0].rule, "R7");
    assert_eq!(cycle[0].file, "lint.toml");
    assert_eq!(cycle[0].line, cfg.topo_edges_line);
    assert_eq!(cycle[0].subject, "d -> j -> d");
    // Both declared edges are also stale (no construction sites exist).
    assert_eq!(out.diagnostics.len(), 3);
}

#[test]
fn allowlist_suppresses_matching_diagnostics_and_counts_uses() {
    let cfg = demo_config(
        r#"
[[allow]]
rule = "R5"
file = "crates/demo/loomed/r5_src.rs"
subject = "Uncovered"
reason = "diagnostics-only latch; exercised by the chaos suite"
"#,
    );
    let files = [
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    assert_eq!(out.diagnostics.len(), 0);
    assert_eq!(out.allow_uses, vec![1]);
    assert!(out.stale_allows().is_empty());
}

#[test]
fn stale_allow_entries_are_reported_by_index() {
    let cfg = demo_config(
        r#"
[[allow]]
rule = "R5"
file = "crates/demo/loomed/r5_src.rs"
subject = "Uncovered"
reason = "diagnostics-only latch; exercised by the chaos suite"

[[allow]]
rule = "R1"
file = "crates/demo/src/never_violates.rs"
reason = "left over from a deleted module"
"#,
    );
    let files = [
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    assert_eq!(out.allow_uses, vec![1, 0]);
    assert_eq!(out.stale_allows(), vec![1]);
}

#[test]
fn rules_do_not_bleed_across_fixtures_in_a_joint_run() {
    // All fixtures together, once: the union of the per-rule expectations
    // and nothing more. Guards against a rule matching another rule's
    // bait (e.g. R2 firing on R1's `core::sync::atomic` import).
    let cfg = demo_config("");
    let files = [
        fixture("crates/demo/src/r1_bad.rs", "r1_bad.rs"),
        fixture("crates/demo/src/r1_good.rs", "r1_good.rs"),
        fixture("crates/demo/src/r2_bad.rs", "r2_bad.rs"),
        fixture("crates/demo/src/r2_good.rs", "r2_good.rs"),
        fixture("crates/demo/src/r3_bad.rs", "r3_bad.rs"),
        fixture("crates/demo/src/r3_good.rs", "r3_good.rs"),
        fixture("crates/demo/src/r4_bad.rs", "r4_bad.rs"),
        fixture("crates/demo/src/r4_good.rs", "r4_good.rs"),
        fixture("crates/demo/src/r6_bad.rs", "r6_bad.rs"),
        fixture("crates/demo/src/r7_bad.rs", "r7_bad.rs"),
        fixture("crates/demo/loomed/r5_src.rs", "r5_src.rs"),
        fixture("crates/demo/tests/loom.rs", "r5_models.rs"),
    ];
    let out = check_files(&files, &cfg);
    let per_rule = |id: &str| out.diagnostics.iter().filter(|d| d.rule == id).count();
    assert_eq!(per_rule("R1"), 4);
    assert_eq!(per_rule("R2"), 4);
    assert_eq!(per_rule("R3"), 5);
    assert_eq!(per_rule("R4"), 5);
    assert_eq!(per_rule("R5"), 1);
    // With no [lockorder]/[topology] declared, R6 and R7 stay inert even
    // over their own bait fixtures.
    assert_eq!(per_rule("R6"), 0);
    assert_eq!(per_rule("R7"), 0);
    assert_eq!(out.diagnostics.len(), 19);
}
