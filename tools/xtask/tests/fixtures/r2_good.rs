// R2 fixture (negative): primitives reached through the crate facade.
// Expected: clean. `Arc` and `mpsc` are deliberately importable without
// the facade — loom only needs to instrument interleaving-relevant ops.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

pub fn fine() {
    let n = Arc::new(AtomicU64::new(0));
    // ORDERING: Relaxed — statistics counter, never synchronises.
    n.fetch_add(1, Ordering::Relaxed);
    let (_tx, _rx) = mpsc::channel::<u64>();
}
