// R5 models fixture: drives `Covered`. Uncovered appears only in this
// comment, so the masked coverage scan must not credit it.

fn model_covered() {
    let c = Covered::new();
    let _ = c;
}
