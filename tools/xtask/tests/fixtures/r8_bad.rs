//! R8 bait: every way a send site can violate the message protocol.

pub fn untagged_send(tx: &Sender) {
    tx.send(Msg::Data(d));
}

pub fn unknown_edge(tx: &Sender) {
    // PROTO: ghost.stream
    tx.send(Msg::Data(d));
}

pub fn unknown_state(tx: &Sender) {
    // PROTO: dj.warp
    tx.send(Msg::Data(d));
}

pub fn unreachable_state(tx: &Sender) {
    // PROTO: dj.island
    tx.send(Msg::Data(d));
}

pub fn wrong_symbol(tx: &Sender) {
    // PROTO: dj.closed
    tx.send(Msg::Heartbeat(wm));
}

pub fn send_after_finish(tx: &Sender) {
    // PROTO: dj.closed
    tx.send(Msg::Flush);
    // PROTO: dj.stream
    tx.send(Msg::Data(d));
}

pub fn malformed_tag(tx: &Sender) {
    // PROTO: stream
    tx.send(Msg::Data(d));
}
