//! R4 fixture (positive): blocking operations in a `hot_path` module.
//! lint: hot_path
//!
//! Expected findings: lines 7, 8, 9, 10, 11 — and nowhere else.

pub fn violations(mu: &Mutex<u64>, rx: &Receiver<u64>, tx: &Sender<u64>, cv: &Waiter) {
    let g = mu.lock();
    let v = rx.recv();
    tx.send(1).ok();
    cv.wait();
    std::thread::sleep(TICK);
    drop((g, v));
}
