// R1 fixture (negative): the index-backend publish idiom with its
// three-step discipline justified — data publishes before the stamp,
// the stamp before the late count. Expected: clean.

use core::sync::atomic::Ordering;

pub fn publish(cell: &RcuCell, max_ts: &AtomicI64, late: &AtomicU64) {
    // ORDERING: AcqRel — readers acquire the snapshot pointer they load.
    cell.swap(new_snapshot(), Ordering::AcqRel);

    // ORDERING: Release — the stamp must publish after its data, so a
    // reader that observes max_ts == T also sees T's tuples (the
    // stamp-implies-visibility contract the loom models pin).
    max_ts.store(5, Ordering::Release);

    late.fetch_add(1, Ordering::Release); // ORDERING: sequenced after the stamp.
}
