//! R9 clean: every sentinel tagged, every `pre` lexically dominating
//! its `post` within the function.

pub fn ordered(rt: &Runtime) {
    // STAMP: wal-dispatch.pre
    rt.record_event(ev);
    // STAMP: wal-dispatch.post
    dispatch(msg);
}

pub fn exactly_once(rt: &Runtime, sink: &Sink) {
    // STAMP: deliver-mark.pre
    sink.emit(row);
    // STAMP: deliver-mark.post
    rt.mark_emitted(fkey);
}

pub fn observes(&mut self) {
    // STAMP: stamp-observe.pre (the watermark is read pre-observation)
    let stamp = self.tracker.current().time();
    // STAMP: stamp-observe.post
    self.tracker.observe(ts);
}
