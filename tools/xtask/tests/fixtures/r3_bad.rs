//! R3 fixture (positive): panicking operations in a `hot_path` module.
//! lint: hot_path
//!
//! Expected findings: lines 7, 9, 11, 13, 15 — and nowhere else.

pub fn violations(xs: &[u64], i: usize, o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let r: Result<u64, ()> = Ok(a);
    let b = r.expect("always ok");
    if b > 10 {
        panic!("too big");
    }
    let c = xs[i];
    if c == 0 {
        todo!();
    }
    a + b + c
}
