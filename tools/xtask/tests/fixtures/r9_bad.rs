//! R9 bait: untagged sentinels, unknown pairs, bad roles, missing and
//! inverted orderings.

pub fn untagged(rt: &Runtime) {
    rt.record_event(ev);
    rt.mark_emitted(fkey);
    self.tracker.observe(ts);
}

pub fn unknown_pair(rt: &Runtime) {
    // STAMP: ghost.pre
    rt.record_event(ev);
}

pub fn bad_role(rt: &Runtime) {
    // STAMP: wal-dispatch.during
    rt.record_event(ev);
}

pub fn missing_pre(rt: &Runtime) {
    // STAMP: wal-dispatch.post
    dispatch(msg);
}

pub fn inverted(rt: &Runtime) {
    // STAMP: deliver-mark.post
    rt.mark_emitted(fkey);
    // STAMP: deliver-mark.pre
    sink.emit(row);
}
