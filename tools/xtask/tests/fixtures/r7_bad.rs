//! R7 fixture (positive): untagged construction, unknown and malformed
//! edge tags, a boundedness mismatch, and a raw send. The declared graph
//! is driver -> joiner (bounded), joiner -> collector (unbounded).
//!
//! Expected findings: lines 9, 14, 19, 24, 28 — and nowhere else (plus
//! the stale driver -> joiner edge, anchored at lint.toml).

pub fn untagged() -> Channel {
    bounded(8)
}

pub fn unknown_edge() -> Channel {
    // CHANNEL: driver -> collector
    bounded(8)
}

pub fn mismatch() -> Channel {
    // CHANNEL: joiner -> collector
    bounded(8)
}

pub fn malformed() -> Channel {
    // CHANNEL: all the workers
    bounded(8)
}

pub fn raw_send(tx: &Sender<u64>) {
    tx.send(1).ok();
}
