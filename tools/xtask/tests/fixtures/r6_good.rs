//! R6 fixture (negative): tagged acquisitions that respect the declared
//! order `a -> b`, plus every way a guard legitimately dies.
//!
//! Expected: clean.

pub fn ordered(a: &Mutex<u64>, b: &RwLock<u64>) {
    // LOCK: a
    let ga = a.lock();
    // LOCK: b — nested under `a` per the declared order
    let gb = b.read();
    drop((gb, ga));
}

pub fn sequential_not_nested(a: &Mutex<u64>, b: &Mutex<u64>) {
    // LOCK: b
    let gb = b.lock();
    drop(gb);
    // LOCK: a — fine: `gb` was dropped above, nothing is held
    let ga = a.lock();
    drop(ga);
}

pub fn block_scoped(a: &Mutex<u64>, b: &Mutex<u64>) {
    {
        // LOCK: b
        let _gb = b.lock();
    }
    // LOCK: a — the `b` guard died with its block
    let ga = a.lock();
    drop(ga);
}

pub fn temporary(a: &Mutex<Vec<u64>>, b: &Mutex<Vec<u64>>) {
    // LOCK: b
    b.lock().push(1);
    // LOCK: a — the `b` temporary died at its statement's `;`
    a.lock().push(2);
}

#[cfg(test)]
mod tests {
    pub fn test_only(mu: &Mutex<u64>) {
        let _ = mu.lock(); // untagged, but test code is exempt
    }
}
