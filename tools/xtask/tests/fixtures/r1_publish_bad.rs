// R1 fixture (positive): the index-backend publish idiom — RCU snapshot
// swap, max-ts stamp store, late-counter bump — with every ordering
// unjustified. Expected findings: lines 8, 10, 12.

use core::sync::atomic::Ordering;

pub fn publish(cell: &RcuCell, max_ts: &AtomicI64, late: &AtomicU64) {
    cell.swap(new_snapshot(), Ordering::AcqRel);

    max_ts.store(5, Ordering::Release);

    late.fetch_add(1, Ordering::Release);
}
