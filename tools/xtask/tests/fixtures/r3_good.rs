//! R3 fixture (negative): panics justified or avoided. Expected: clean.
//! lint: hot_path

pub fn justified(xs: &[u64], i: usize, o: Option<u64>) -> u64 {
    // PANIC-OK: i is the worker id, bounded by the team size at spawn.
    let c = xs[i];
    let a = o.unwrap_or(0);
    let first = xs[0];
    let d = o.unwrap(); // PANIC-OK: caller's contract guarantees Some.
    debug_assert!(d > 0);
    a + c + d + first
}

#[cfg(test)]
mod tests {
    pub fn test_only(o: Option<u64>) -> u64 {
        o.unwrap()
    }
}
