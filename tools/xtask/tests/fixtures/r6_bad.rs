//! R6 fixture (positive): untagged, undeclared, mis-ordered, and
//! re-entrant acquisitions against classes a/b with order `a -> b`.
//!
//! Expected findings: lines 7, 13, 21, 29 — and nowhere else.

pub fn untagged(mu: &Mutex<u64>) {
    let g = mu.lock();
    drop(g);
}

pub fn undeclared(mu: &Mutex<u64>) {
    // LOCK: mystery
    let g = mu.lock();
    drop(g);
}

pub fn wrong_order(a: &Mutex<u64>, b: &Mutex<u64>) {
    // LOCK: b
    let gb = b.lock();
    // LOCK: a
    let ga = a.lock();
    drop((ga, gb));
}

pub fn reentrant(a: &Mutex<u64>) {
    // LOCK: a
    let g1 = a.lock();
    // LOCK: a
    let g2 = a.lock();
    drop((g1, g2));
}
