// R1 fixture (positive): ordering call sites without ORDERING: comments.
// Expected findings: lines 8, 10, 12, 17 — and nowhere else.

use core::sync::atomic::Ordering;

pub fn violations(flag: &core::sync::atomic::AtomicBool) {
    // A nearby comment without the marker does not count.
    flag.store(true, Ordering::Release);

    let x = flag.load(Ordering::Acquire);
    let _ = x;
    flag.swap(false, Ordering::AcqRel);

    // Two orderings on one line (the compare_exchange below) produce
    // exactly one diagnostic, anchored at the line naming them.
    while flag
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::Relaxed)
        .is_err()
    {}
}

#[cfg(test)]
mod tests {
    // Test code is exempt: no diagnostic for the store below.
    pub fn not_flagged(flag: &core::sync::atomic::AtomicBool) {
        flag.store(true, core::sync::atomic::Ordering::Release);
    }
}
