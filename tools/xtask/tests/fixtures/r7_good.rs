//! R7 fixture (negative): tagged constructions matching the declared
//! topology, a guarded send, and a justified raw send.
//!
//! Expected: clean.

pub fn fan_out() -> Channel {
    // CHANNEL: driver -> joiner (one queue per worker)
    bounded(cap)
}

pub fn collect() -> Channel {
    // CHANNEL: joiner -> collector
    unbounded()
}

pub fn guarded(tx: &Sender<u64>, kill: &AtomicBool) {
    send_guarded(tx, 1, TIMEOUT, kill).ok();
}

pub fn justified(tx: &Sender<u64>) {
    // SEND-OK: teardown report; the receiver outlives every sender by construction
    tx.send(1).ok();
}

#[cfg(test)]
mod tests {
    pub fn test_only(tx: &Sender<u64>) {
        tx.send(1).ok(); // test code is exempt
    }
}
