//! R8 clean: tagged sends entering declared, reachable states; match
//! arms and let-patterns are consumers and need no tag; a non-`Msg`
//! edge (the collector's) is realised by hand-placed tags.

pub fn stream_sends(tx: &Sender) {
    // PROTO: dj.stream
    tx.send(Msg::Data(d));
    // PROTO: dj.stream (batched fast path)
    tx.send(Msg::Batch(buf));
    // PROTO: dj.stream
    tx.send(Msg::Heartbeat(wm));
}

pub fn close(tx: &Sender) {
    // PROTO: dj.closed
    tx.send(Msg::Flush);
}

pub fn consume(rx: &Receiver) {
    match rx.recv() {
        Msg::Data(d) => on_data(d),
        Msg::Flush => {}
        _ => {}
    }
    if let Msg::Heartbeat(wm) = peek() {
        advance(wm);
    }
    while let Msg::Data(d) = next() {
        on_data(d);
    }
}

pub fn hand_tagged_non_msg_edge(tx: &Sender) {
    // PROTO: jc.stream
    tx.send(ToCollector::Partial(p));
    // PROTO: jc.closed
    tx.send(ToCollector::JoinerDone);
}
