//! R4 fixture (negative): try_* siblings and justified blocking.
//! lint: hot_path
//!
//! Expected: clean.

pub fn justified(mu: &Mutex<u64>, rx: &Receiver<u64>, barrier: &Barrier) {
    let g = mu.try_lock();
    let v = rx.try_recv();
    // BLOCKING-OK: end-of-input rendezvous; every worker arrives or the
    // kill latch poisons the barrier.
    barrier.wait();
    drop((g, v));
}

#[cfg(test)]
mod tests {
    pub fn test_only(mu: &Mutex<u64>) {
        let _ = mu.lock();
    }
}
