// R5 fixture: *private* atomic-owning types — the shape of the shared
// state structs behind the Jiffy-lite and HINT-lite backends. R5 audits
// `pub struct` declarations only: a type that cannot escape the crate is
// driven through its public owner, which is what the models name.
// Expected: clean, with no model file naming any of these.

struct SharedRuns {
    max_ts: AtomicI64,
    late: AtomicU64,
}

pub(crate) struct BucketDir {
    stamp: AtomicU64,
}

pub struct Handle {
    inner: Arc<SharedRuns>,
}
