// R1 fixture (negative): every ordering site justified. Expected: clean.

use core::sync::atomic::Ordering;

pub fn justified(flag: &core::sync::atomic::AtomicBool) {
    // ORDERING: Release — pairs with the Acquire load below.
    flag.store(true, Ordering::Release);

    let x = flag.load(Ordering::Acquire); // ORDERING: pairs with the store above.
    let _ = x;

    // ORDERING: AcqRel — claim/handoff; pairs with itself across callers.
    // A marker above a multi-line statement covers the line naming the
    // orderings further down.
    while flag
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::Relaxed)
        .is_err()
    {}
}
