// R5 fixture: public atomic-owning types. `Covered` is named in the
// models fixture; `Uncovered` is only mentioned there in a comment,
// which must not count. Expected finding: line 10 only.

pub struct Covered {
    seq: AtomicU64,
}

/// Owns an atomic but no model drives it.
pub struct Uncovered {
    flag: AtomicBool,
}

pub struct Plain {
    n: u64,
}

pub struct View {
    tail: [*const Atomic<Node>; 4],
}
