// R2 fixture (positive): std::sync reached directly in a loom-verified
// crate. Expected findings: lines 4, 5, 6, 9 — and nowhere else.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::sync::RwLock;

pub fn escape_hatch() {
    let _ = loom::sync::atomic::AtomicUsize::new(0);
    // Arc alone is fine (no loom instrumentation needed for refcounts).
    let _ = Arc::new(AtomicU64::new(0));
}

#[cfg(test)]
mod tests {
    // Tests may use std primitives directly: no diagnostic here.
    use std::sync::atomic::AtomicBool;
}
